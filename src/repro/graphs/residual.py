"""Residual-graph views used by the adaptive seeding loop.

After an adaptive algorithm commits to a seed and observes the set of nodes
the seed activated, those nodes are removed from the graph: they can neither
be seeded again nor re-activated, and they no longer contribute spread.  The
paper calls the remaining structure the *residual graph* ``G_i``.

Rebuilding a CSR graph after every seed would dominate the running time, so
the library represents residual graphs as a lightweight *view*: the original
:class:`~repro.graphs.graph.ProbabilisticGraph` plus a boolean activity mask.
All diffusion and RR-set routines accept either a plain graph or a
:class:`ResidualGraph`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.utils.exceptions import ValidationError


class ResidualGraph:
    """A view of a graph with some nodes removed (marked inactive).

    Parameters
    ----------
    base:
        The underlying full graph.
    active_mask:
        Boolean array of length ``base.n``; ``True`` marks nodes still present
        in the residual graph.  Defaults to all-active.
    """

    __slots__ = ("_base", "_active", "_num_active", "_num_active_edges", "_active_nodes")

    def __init__(
        self,
        base: ProbabilisticGraph,
        active_mask: Optional[np.ndarray] = None,
    ) -> None:
        self._base = base
        if active_mask is None:
            self._active = np.ones(base.n, dtype=bool)
        else:
            mask = np.asarray(active_mask, dtype=bool)
            if mask.shape != (base.n,):
                raise ValidationError(
                    f"active_mask must have shape ({base.n},), got {mask.shape}"
                )
            self._active = mask.copy()
        # The view is immutable (updates go through `without`), so the
        # aggregates below are computed at most once and then served from
        # cache — RR-set batches query them on every generation call.
        self._num_active: Optional[int] = None
        self._num_active_edges: Optional[int] = None
        self._active_nodes: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # identity / size
    # ------------------------------------------------------------------ #

    @property
    def base(self) -> ProbabilisticGraph:
        """The underlying full graph."""
        return self._base

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean activity mask (do not mutate; use :meth:`without`)."""
        return self._active

    @property
    def n(self) -> int:
        """Number of nodes of the *base* graph (ids stay stable)."""
        return self._base.n

    @property
    def num_active(self) -> int:
        """Number of nodes still present in the residual graph (``n_i``, cached)."""
        if self._num_active is None:
            self._num_active = int(self._active.sum())
        return self._num_active

    @property
    def num_active_edges(self) -> int:
        """Number of edges with both endpoints active (``m_i``, cached).

        Computed from the graph's cached edge-source array rather than by
        materialising the full edge list (`edge_array` copies all three
        columns, including an ``O(m)`` ``np.repeat`` in older revisions).
        """
        if self._num_active_edges is None:
            sources = self._base.edge_sources
            targets = self._base.edge_targets
            self._num_active_edges = int(
                np.count_nonzero(self._active[sources] & self._active[targets])
            )
        return self._num_active_edges

    def active_nodes(self) -> np.ndarray:
        """Array of node ids still present (cached; do not mutate)."""
        if self._active_nodes is None:
            self._active_nodes = np.nonzero(self._active)[0]
        return self._active_nodes

    def is_active(self, node: int) -> bool:
        """Whether ``node`` is still present in the residual graph."""
        return bool(self._active[node])

    # ------------------------------------------------------------------ #
    # adjacency restricted to active nodes
    # ------------------------------------------------------------------ #

    def out_neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Active out-neighbours of ``node`` as ``(targets, probs, edge_ids)``."""
        targets, probs, edge_ids = self._base.out_neighbors(node)
        keep = self._active[targets]
        return targets[keep], probs[keep], edge_ids[keep]

    def in_neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Active in-neighbours of ``node`` as ``(sources, probs, edge_ids)``."""
        sources, probs, edge_ids = self._base.in_neighbors(node)
        keep = self._active[sources]
        return sources[keep], probs[keep], edge_ids[keep]

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #

    def without(self, removed_nodes: Iterable[int]) -> "ResidualGraph":
        """Return a new residual graph with ``removed_nodes`` additionally removed."""
        mask = self._active.copy()
        removed = np.asarray(list(removed_nodes), dtype=np.int64)
        if removed.size:
            if removed.min() < 0 or removed.max() >= self._base.n:
                raise ValidationError("removed_nodes contains invalid node ids")
            mask[removed] = False
        return ResidualGraph(self._base, mask)

    def restricted_to(self, kept_nodes: Iterable[int]) -> "ResidualGraph":
        """Return a residual graph keeping only ``kept_nodes`` (intersected with current)."""
        keep = np.zeros(self._base.n, dtype=bool)
        kept = np.asarray(list(kept_nodes), dtype=np.int64)
        if kept.size:
            keep[kept] = True
        return ResidualGraph(self._base, self._active & keep)

    def materialize(self, name: str = "") -> ProbabilisticGraph:
        """Build a standalone :class:`ProbabilisticGraph` of the active part.

        Node ids are relabelled; mostly useful for debugging and tests.
        """
        return self._base.subgraph(self.active_nodes(), name=name)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def copy(self) -> "ResidualGraph":
        """Independent copy of the view (the base graph is shared)."""
        return ResidualGraph(self._base, self._active)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ResidualGraph active={self.num_active}/{self._base.n} "
            f"of {self._base.name or 'graph'}>"
        )


def as_residual(graph: ProbabilisticGraph | ResidualGraph) -> ResidualGraph:
    """Coerce ``graph`` into a :class:`ResidualGraph` view (no copy if already one)."""
    if isinstance(graph, ResidualGraph):
        return graph
    return ResidualGraph(graph)
