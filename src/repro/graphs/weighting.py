"""Edge-probability assignment schemes.

The paper (Section VI-A) follows the common convention in the influence
maximization literature and sets every edge probability to
``p(u, v) = 1 / indeg(v)`` — the *weighted cascade* model.  This module also
provides the other standard schemes (uniform and trivalency) so that users
can study the algorithms under different propagation regimes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require, require_probability

#: Default probability triple of the trivalency model (Chen et al.).
TRIVALENCY_LEVELS = (0.1, 0.01, 0.001)


def weighted_cascade(graph: ProbabilisticGraph) -> ProbabilisticGraph:
    """Assign ``p(u, v) = 1 / indeg(v)`` to every edge (weighted cascade).

    This is the setting used throughout the paper's experiments.
    """
    _, targets, _ = graph.edge_array()
    in_degrees = graph.in_degrees
    probabilities = 1.0 / np.maximum(in_degrees[targets], 1)
    return graph.with_probabilities(probabilities)


def uniform_probability(graph: ProbabilisticGraph, probability: float) -> ProbabilisticGraph:
    """Assign the same probability to every edge."""
    require_probability(probability, "probability")
    return graph.with_uniform_probability(probability)


def trivalency(
    graph: ProbabilisticGraph,
    levels: Sequence[float] = TRIVALENCY_LEVELS,
    random_state: RandomState = None,
) -> ProbabilisticGraph:
    """Assign each edge one of ``levels`` uniformly at random (trivalency model)."""
    require(len(levels) > 0, "levels must not be empty")
    for level in levels:
        require_probability(level, "levels entry")
    rng = ensure_rng(random_state)
    probabilities = rng.choice(np.asarray(levels, dtype=np.float64), size=graph.m)
    return graph.with_probabilities(probabilities)


def random_probabilities(
    graph: ProbabilisticGraph,
    low: float = 0.01,
    high: float = 0.1,
    random_state: RandomState = None,
) -> ProbabilisticGraph:
    """Assign each edge an independent uniform probability in ``[low, high]``."""
    require_probability(low, "low")
    require_probability(high, "high")
    require(low <= high, "low must be <= high")
    rng = ensure_rng(random_state)
    probabilities = rng.uniform(low, high, size=graph.m)
    return graph.with_probabilities(probabilities)
