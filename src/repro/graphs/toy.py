"""The worked example of Figure 1 in the paper.

Section II-B illustrates the adaptivity gap on a seven-node graph
``G1`` with target set ``T = {v1, v2, v6}`` and a cost of 1.5 per target
node.  The figure's exact edge/probability assignment is not fully
recoverable from the text, so this module ships a faithful *reconstruction*
with the same node set, the same propagation structure (v2 can reach v3/v4,
v6 can reach v5/v7, v7 can feed back into v1) and probabilities chosen from
the values printed in the figure.  The reconstruction reproduces the
quantities the example turns on:

* the expected profit of seeding the whole target set is
  ``ρ(T) = E[I(T)] − 4.5 ≈ 1.65`` (the paper reports 6.16 − 4.5 = 1.66);
* under the realization drawn in Fig. 1(b)–(d) — v2 activates {v3, v4},
  v6 activates {v5, v7}, and v7 fails to activate v1 — the adaptive
  strategy seeds ``{v2, v6}`` for a realized profit of ``6 − 3 = 3`` while
  the nonadaptive solution ``{v1, v2, v6}`` achieves ``7 − 4.5 = 2.5``,
  i.e. the adaptive strategy earns 20% more profit.

Nodes ``v1..v7`` are mapped to ids ``0..6``.
"""

from __future__ import annotations

from typing import Dict

from repro.graphs.graph import ProbabilisticGraph

#: Mapping from the paper's node labels to integer node ids.
TOY_NODE_IDS: Dict[str, int] = {f"v{i}": i - 1 for i in range(1, 8)}

#: Seeding cost of each node in the toy target set.
TOY_COST_PER_NODE = 1.5

#: The toy target set of Fig. 1 expressed as node ids.
TOY_TARGET_SET = frozenset({TOY_NODE_IDS["v1"], TOY_NODE_IDS["v2"], TOY_NODE_IDS["v6"]})

#: Expected profit of the full target set as reported by the paper
#: (6.16 − 4.5 = 1.66); the reconstruction yields ≈ 1.65 (tests enforce a
#: ±0.05 agreement via exact possible-world enumeration).
TOY_NONADAPTIVE_PROFIT = 1.66

#: Realized profit of the adaptive strategy under the Fig. 1 realization.
TOY_ADAPTIVE_REALIZED_PROFIT = 3.0

#: Realized profit of the nonadaptive solution under the same realization.
TOY_NONADAPTIVE_REALIZED_PROFIT = 2.5

# Directed probabilistic edges of the Fig. 1(a) reconstruction.
_TOY_EDGES = [
    ("v1", "v2", 0.4),
    ("v1", "v3", 0.8),
    ("v2", "v3", 0.7),
    ("v2", "v4", 0.6),
    ("v3", "v4", 0.5),
    ("v4", "v5", 0.2),
    ("v6", "v5", 0.6),
    ("v6", "v7", 0.7),
    ("v5", "v7", 0.3),
    ("v7", "v1", 0.7),
]


def toy_graph() -> ProbabilisticGraph:
    """Build the seven-node example graph ``G1`` of Fig. 1."""
    edges = [
        (TOY_NODE_IDS[u], TOY_NODE_IDS[v], p)
        for u, v, p in _TOY_EDGES
    ]
    return ProbabilisticGraph.from_edge_list(edges, n=7, directed=True, name="fig1-toy")


def toy_costs() -> Dict[int, float]:
    """Per-node costs of the toy target set (1.5 each, others free)."""
    return {node: TOY_COST_PER_NODE for node in TOY_TARGET_SET}


#: Edges that are live in the realization drawn in Fig. 1(b)–(d).
TOY_FIG1_LIVE_EDGES = (
    ("v2", "v3"),
    ("v2", "v4"),
    ("v6", "v5"),
    ("v6", "v7"),
)


def toy_fig1_realization():
    """The specific possible world of Fig. 1(b)–(d).

    Only the four edges of :data:`TOY_FIG1_LIVE_EDGES` are live: v2 activates
    {v3, v4}, v6 activates {v5, v7}, and every other influence attempt
    (including v7 → v1) fails.

    Returns
    -------
    (realization, graph):
        The :class:`repro.diffusion.realization.Realization` and the graph it
        was built on (handy for constructing an
        :class:`repro.core.session.AdaptiveSession` directly).
    """
    from repro.diffusion.realization import Realization

    graph = toy_graph()
    live_pairs = {(TOY_NODE_IDS[u], TOY_NODE_IDS[v]) for u, v in TOY_FIG1_LIVE_EDGES}
    live_edge_ids = []
    edge_id = 0
    for source, target, _probability in graph.edges():
        if (source, target) in live_pairs:
            live_edge_ids.append(edge_id)
        edge_id += 1
    return Realization.from_live_edge_ids(graph, live_edge_ids), graph
