"""Dataset registry: structural proxies for the paper's four SNAP graphs.

Table II of the paper lists four networks:

========== ======= ======= ========== =========
Dataset    n       m       Type       Avg. deg
========== ======= ======= ========== =========
NetHEPT    15.2K   31.4K   undirected 4.18
Epinions   132K    841K    directed   13.4
DBLP       655K    1.99M   undirected 6.08
LiveJournal 4.85M  69.0M   directed   28.5
========== ======= ======= ========== =========

The raw SNAP files are not redistributable with this repository and the
largest of them is far beyond what a pure-Python RR-set engine should be
asked to chew through, so this module provides *scaled structural proxies*:
synthetic graphs whose directedness and average degree match the originals,
generated at a configurable ``scale`` (fraction of the original node count,
default small enough for laptop benchmarking).  Real SNAP edge lists, when
available on disk, can be loaded through :func:`repro.graphs.io.load_edge_list`
and dropped into any experiment instead.

Every proxy is returned with weighted-cascade probabilities
(``p(u, v) = 1/indeg(v)``), matching Section VI-A of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.graphs import generators, weighting
from repro.graphs.graph import ProbabilisticGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class DatasetSpec:
    """Description of one dataset in the registry."""

    name: str
    paper_nodes: int
    paper_edges: int
    directed: bool
    paper_avg_degree: float
    default_proxy_nodes: int
    builder: Callable[[int, RandomState], ProbabilisticGraph]

    def build(
        self,
        nodes: Optional[int] = None,
        random_state: RandomState = None,
        weighted_cascade: bool = True,
    ) -> ProbabilisticGraph:
        """Instantiate the proxy graph.

        Parameters
        ----------
        nodes:
            Proxy node count; defaults to :attr:`default_proxy_nodes`.
        random_state:
            RNG seed/generator controlling the synthetic structure.
        weighted_cascade:
            When ``True`` (default, matches the paper) edge probabilities are
            set to ``1/indeg(v)``; otherwise the generator's unit
            probabilities are kept.
        """
        count = self.default_proxy_nodes if nodes is None else int(nodes)
        require_positive(count, "nodes")
        graph = self.builder(count, random_state)
        if weighted_cascade:
            graph = weighting.weighted_cascade(graph)
        return graph


def _build_nethept(nodes: int, random_state: RandomState) -> ProbabilisticGraph:
    # Collaboration network, undirected, avg degree ~4.2 -> BA with attach=2.
    return generators.barabasi_albert(
        n=nodes, attach=2, name="nethept-like", random_state=random_state
    )


def _build_epinions(nodes: int, random_state: RandomState) -> ProbabilisticGraph:
    # Trust network, directed, avg out-degree ~6.4 (13.4 total degree).
    return generators.powerlaw_directed(
        n=nodes, avg_out_degree=6.4, exponent=2.0, name="epinions-like",
        random_state=random_state,
    )


def _build_dblp(nodes: int, random_state: RandomState) -> ProbabilisticGraph:
    # Collaboration network, undirected, avg degree ~6.1 -> BA with attach=3.
    return generators.barabasi_albert(
        n=nodes, attach=3, name="dblp-like", random_state=random_state
    )


def _build_livejournal(nodes: int, random_state: RandomState) -> ProbabilisticGraph:
    # Friendship network, directed, avg out-degree ~14 (28.5 total degree).
    return generators.powerlaw_directed(
        n=nodes, avg_out_degree=14.0, exponent=2.2, name="livejournal-like",
        random_state=random_state,
    )


#: Registry of dataset proxies keyed by canonical lower-case name.
DATASETS: Dict[str, DatasetSpec] = {
    "nethept": DatasetSpec(
        name="NetHEPT",
        paper_nodes=15_200,
        paper_edges=31_400,
        directed=False,
        paper_avg_degree=4.18,
        default_proxy_nodes=1_000,
        builder=_build_nethept,
    ),
    "epinions": DatasetSpec(
        name="Epinions",
        paper_nodes=132_000,
        paper_edges=841_000,
        directed=True,
        paper_avg_degree=13.4,
        default_proxy_nodes=2_000,
        builder=_build_epinions,
    ),
    "dblp": DatasetSpec(
        name="DBLP",
        paper_nodes=655_000,
        paper_edges=1_990_000,
        directed=False,
        paper_avg_degree=6.08,
        default_proxy_nodes=3_000,
        builder=_build_dblp,
    ),
    "livejournal": DatasetSpec(
        name="LiveJournal",
        paper_nodes=4_850_000,
        paper_edges=69_000_000,
        directed=True,
        paper_avg_degree=28.5,
        default_proxy_nodes=4_000,
        builder=_build_livejournal,
    ),
}

#: Datasets in the order the paper reports them.
DATASET_ORDER = ("nethept", "epinions", "dblp", "livejournal")


def dataset_names() -> tuple[str, ...]:
    """Canonical (lower-case) names of the registered datasets."""
    return DATASET_ORDER


def get_spec(name: str) -> DatasetSpec:
    """Look up a :class:`DatasetSpec` by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in DATASETS:
        known = ", ".join(sorted(DATASETS))
        raise ConfigurationError(f"unknown dataset {name!r}; known datasets: {known}")
    return DATASETS[key]


def load_proxy(
    name: str,
    nodes: Optional[int] = None,
    random_state: RandomState = None,
    weighted_cascade: bool = True,
) -> ProbabilisticGraph:
    """Build the synthetic proxy graph for dataset ``name``.

    Examples
    --------
    >>> graph = load_proxy("nethept", nodes=200, random_state=0)
    >>> graph.n
    200
    """
    rng = ensure_rng(random_state)
    return get_spec(name).build(nodes=nodes, random_state=rng, weighted_cascade=weighted_cascade)
