"""Reading and writing graphs as plain-text edge lists.

The format matches what SNAP distributes: one edge per line,
``source target [probability]``, ``#``-prefixed comment lines ignored.
If the probability column is absent the caller chooses a weighting scheme
(the experiments apply weighted cascade, as the paper does).
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Optional, Union

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.weighting import weighted_cascade
from repro.utils.exceptions import GraphFormatError

PathLike = Union[str, Path]


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def load_edge_list(
    path: PathLike,
    directed: bool = True,
    name: Optional[str] = None,
    apply_weighted_cascade: bool = True,
    default_probability: float = 1.0,
) -> ProbabilisticGraph:
    """Load a graph from a SNAP-style edge-list file.

    Parameters
    ----------
    path:
        Text file (optionally gzip-compressed) with ``u v [p]`` lines.
    directed:
        Whether the file lists directed edges.  Undirected files get both
        directions materialised.
    name:
        Graph name; defaults to the file stem.
    apply_weighted_cascade:
        When ``True`` and the file has no probability column, assign
        ``p(u, v) = 1/indeg(v)``; otherwise use ``default_probability``.
    """
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"graph file not found: {path}")
    edges: list[tuple[int, int, float]] = []
    has_probability = False
    with _open_text(path, "r") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#") or stripped.startswith("%"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'source target [probability]'"
                )
            try:
                source, target = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: node ids must be integers"
                ) from exc
            if len(parts) >= 3:
                has_probability = True
                probability = float(parts[2])
            else:
                probability = default_probability
            if source == target:
                continue
            edges.append((source, target, probability))

    graph = ProbabilisticGraph.from_edge_list(
        edges, directed=directed, name=name or path.stem
    )
    if not has_probability and apply_weighted_cascade:
        graph = weighted_cascade(graph)
    return graph


def save_edge_list(
    graph: ProbabilisticGraph,
    path: PathLike,
    include_probabilities: bool = True,
) -> None:
    """Write ``graph`` to ``path`` as an edge list (one directed edge per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, "w") as handle:
        handle.write(f"# {graph.name or 'graph'}: n={graph.n} m={graph.m}\n")
        for source, target, probability in graph.edges():
            if include_probabilities:
                handle.write(f"{source} {target} {probability:.10g}\n")
            else:
                handle.write(f"{source} {target}\n")


def roundtrip_equal(graph: ProbabilisticGraph, path: PathLike) -> bool:
    """Save then reload ``graph`` and report whether the result is identical.

    Convenience used by tests and sanity checks.
    """
    save_edge_list(graph, path)
    reloaded = load_edge_list(path, directed=True, apply_weighted_cascade=False)
    if reloaded.n < graph.n:
        # Isolated trailing nodes are not representable in an edge list.
        return False
    return reloaded.m == graph.m
