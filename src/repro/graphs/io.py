"""Reading and writing graphs as plain-text edge lists.

The format matches what SNAP distributes: one edge per line,
``source target [probability]``, ``#``-prefixed comment lines ignored.
If the probability column is absent the caller chooses a weighting scheme
(the experiments apply weighted cascade, as the paper does).

Parsing is chunked and vectorized: lines are fed to ``np.loadtxt`` in
fixed-size batches, so no per-line Python tuple list is ever built and a
69M-edge SNAP file streams through a bounded working set.  For repeated
runs convert the file once to the binary ``.rgx`` format
(:mod:`repro.graphs.binary`), which skips text parsing entirely and can
be memory-mapped.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.weighting import weighted_cascade
from repro.utils.exceptions import GraphFormatError

PathLike = Union[str, Path]

#: Number of data lines parsed per ``np.loadtxt`` batch.
_CHUNK_LINES = 1 << 16


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def _parse_chunk(lines: List[str], path: Path) -> np.ndarray:
    """Parse a batch of data lines into an ``(k, columns)`` float array."""
    try:
        data = np.loadtxt(lines, dtype=np.float64, ndmin=2, comments=None)
    except ValueError as exc:
        raise GraphFormatError(
            f"{path}: malformed edge list — every data line must be "
            f"'source target [probability]' with numeric fields ({exc})"
        ) from exc
    if data.shape[1] < 2:
        raise GraphFormatError(
            f"{path}: expected 'source target [probability]', got a "
            f"single-column line"
        )
    ids = data[:, :2]
    if np.any(ids < 0) or np.any(ids != np.floor(ids)):
        raise GraphFormatError(
            f"{path}: node ids must be non-negative integers"
        )
    return data


def load_edge_list(
    path: PathLike,
    directed: bool = True,
    name: Optional[str] = None,
    apply_weighted_cascade: bool = True,
    default_probability: float = 1.0,
) -> ProbabilisticGraph:
    """Load a graph from a SNAP-style edge-list file.

    Parameters
    ----------
    path:
        Text file (optionally gzip-compressed) with ``u v [p]`` lines.
    directed:
        Whether the file lists directed edges.  Undirected files get both
        directions materialised.
    name:
        Graph name; defaults to the file stem.
    apply_weighted_cascade:
        When ``True`` and the file has no probability column, assign
        ``p(u, v) = 1/indeg(v)``; otherwise use ``default_probability``.
    """
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"graph file not found: {path}")

    pair_parts: List[np.ndarray] = []
    prob_parts: List[np.ndarray] = []
    has_probability = False
    chunk: List[str] = []

    def flush() -> None:
        nonlocal has_probability
        if not chunk:
            return
        data = _parse_chunk(chunk, path)
        pair_parts.append(data[:, :2].astype(np.int64))
        if data.shape[1] >= 3:
            has_probability = True
            prob_parts.append(np.ascontiguousarray(data[:, 2]))
        else:
            prob_parts.append(
                np.full(data.shape[0], default_probability, dtype=np.float64)
            )
        chunk.clear()

    with _open_text(path, "r") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped or stripped[0] in "#%":
                continue
            chunk.append(stripped)
            if len(chunk) >= _CHUNK_LINES:
                flush()
        flush()

    if pair_parts:
        pairs = np.concatenate(pair_parts)
        probs = np.concatenate(prob_parts)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
        probs = np.empty(0, dtype=np.float64)

    keep = pairs[:, 0] != pairs[:, 1]
    if not bool(keep.all()):
        pairs = pairs[keep]
        probs = probs[keep]
    if not directed:
        pairs = np.concatenate([pairs, pairs[:, ::-1]])
        probs = np.concatenate([probs, probs])

    n = int(pairs.max()) + 1 if pairs.size else 0
    graph = ProbabilisticGraph(n, pairs, probs, name=name or path.stem)
    if not has_probability and apply_weighted_cascade:
        graph = weighted_cascade(graph)
    return graph


def save_edge_list(
    graph: ProbabilisticGraph,
    path: PathLike,
    include_probabilities: bool = True,
) -> None:
    """Write ``graph`` to ``path`` as an edge list (one directed edge per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, "w") as handle:
        handle.write(f"# {graph.name or 'graph'}: n={graph.n} m={graph.m}\n")
        for source, target, probability in graph.edges():
            if include_probabilities:
                handle.write(f"{source} {target} {probability:.10g}\n")
            else:
                handle.write(f"{source} {target}\n")


def roundtrip_equal(graph: ProbabilisticGraph, path: PathLike) -> bool:
    """Save then reload ``graph`` and report whether the result is identical.

    Convenience used by tests and sanity checks.  When ``path`` ends in
    ``.rgx`` the binary format is used and the comparison is exact —
    including graphs with isolated trailing nodes, which a plain edge
    list cannot represent (``n`` is stored explicitly in the binary
    header).  For text paths the historical caveat stands: a graph whose
    highest-numbered nodes have no edges reloads with a smaller ``n``,
    and this helper reports ``False``.
    """
    path = Path(path)
    if path.suffix == ".rgx":
        from repro.graphs.binary import load_rgx, write_rgx

        write_rgx(graph, path)
        reloaded = load_rgx(path, mmap=False)
        ours_out = graph.out_csr()
        theirs_out = reloaded.out_csr()
        ours_in = graph.in_csr()
        theirs_in = reloaded.in_csr()
        return (
            reloaded.n == graph.n
            and reloaded.m == graph.m
            and all(
                np.array_equal(a, b)
                for a, b in zip(ours_out + ours_in, theirs_out + theirs_in)
            )
        )
    save_edge_list(graph, path)
    reloaded = load_edge_list(path, directed=True, apply_weighted_cascade=False)
    if reloaded.n < graph.n:
        # Isolated trailing nodes are not representable in an edge list.
        return False
    return reloaded.m == graph.m
