"""Descriptive graph statistics (Table II style reports)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graphs.graph import ProbabilisticGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary statistics of one probabilistic graph."""

    name: str
    num_nodes: int
    num_directed_edges: int
    num_undirected_edges: int
    is_undirected_input: bool
    average_degree: float
    max_out_degree: int
    max_in_degree: int
    average_edge_probability: float

    @property
    def graph_type(self) -> str:
        """"undirected" or "directed", matching Table II's Type column."""
        return "undirected" if self.is_undirected_input else "directed"

    def as_row(self) -> dict:
        """Dictionary row for tabular reporting."""
        return {
            "dataset": self.name,
            "n": self.num_nodes,
            "m": self.num_undirected_edges if self.is_undirected_input else self.num_directed_edges,
            "type": self.graph_type,
            "avg_deg": round(self.average_degree, 2),
        }


def compute_statistics(graph: ProbabilisticGraph) -> GraphStatistics:
    """Compute :class:`GraphStatistics` for ``graph``.

    The *average degree* follows the paper's convention: for undirected
    inputs it is ``2 * |E_undirected| / n`` (equivalently the mean number of
    incident edges), for directed inputs it is total degree
    ``(in + out) / n``.
    """
    n = max(graph.n, 1)
    m_directed = graph.m
    m_undirected = m_directed // 2 if graph.undirected_input else m_directed
    if graph.undirected_input:
        average_degree = 2.0 * m_undirected / n
    else:
        average_degree = 2.0 * m_directed / n  # in-degree + out-degree per node
    out_degrees = graph.out_degrees
    in_degrees = graph.in_degrees
    _, _, probs = graph.edge_array()
    return GraphStatistics(
        name=graph.name or "graph",
        num_nodes=graph.n,
        num_directed_edges=m_directed,
        num_undirected_edges=m_undirected,
        is_undirected_input=graph.undirected_input,
        average_degree=float(average_degree),
        max_out_degree=int(out_degrees.max()) if graph.n else 0,
        max_in_degree=int(in_degrees.max()) if graph.n else 0,
        average_edge_probability=float(probs.mean()) if probs.size else 0.0,
    )


def degree_histogram(graph: ProbabilisticGraph, direction: str = "out") -> np.ndarray:
    """Return ``hist[d] = number of nodes with (out/in) degree d``."""
    if direction not in {"out", "in"}:
        raise ValueError("direction must be 'out' or 'in'")
    degrees = graph.out_degrees if direction == "out" else graph.in_degrees
    return np.bincount(degrees)


def statistics_table(graphs: Iterable[ProbabilisticGraph]) -> list[dict]:
    """Table II style rows for a collection of graphs."""
    return [compute_statistics(graph).as_row() for graph in graphs]
