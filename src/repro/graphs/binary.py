"""Versioned binary on-disk graph format (``.rgx``) with memory-mapped loads.

The text edge lists of :mod:`repro.graphs.io` are fine for NetHEPT-sized
inputs, but parsing 69 million LiveJournal edges per run — and holding the
parsed graph fully in RAM per process — is what kept Table II on scaled
proxies.  ``.rgx`` stores a :class:`~repro.graphs.graph.ProbabilisticGraph`
exactly as the engines consume it:

* a fixed little-endian header (magic, version, ``n``, ``m``, flags, name);
* the six canonical CSR arrays, 64-byte aligned, in a fixed order:
  ``out_offsets`` (int64, n+1), ``out_targets`` (uint32, m),
  ``out_probs`` (float64, m), ``in_offsets`` (int64, n+1),
  ``in_sources`` (uint32, m), ``in_probs`` (float64, m).

Node ids are stored as ``uint32`` (every SNAP graph fits; writing a graph
with ``n > 2**32`` raises :class:`~repro.utils.exceptions.GraphFormatError`),
halving the id arrays relative to the in-RAM int64 layout.  Because the
arrays are the *canonical* CSR (the lexicographic edge order
:meth:`ProbabilisticGraph._build_csr` defines), :func:`load_rgx` hands them
straight to :meth:`ProbabilisticGraph.from_csr_arrays` — no re-sorting, no
validation pass over ``m`` elements.  With ``mmap=True`` (the default) the
arrays are ``np.memmap`` views, so opening LiveJournal is O(header) and the
graph page-faults in lazily; the loaded graph carries an
:class:`RgxMapping` so the shared-memory broker can let every worker on the
host attach to the same file by path instead of copying the CSR through
``/dev/shm`` (:mod:`repro.parallel.broker`).

The results produced on an ``.rgx``-backed graph are bit-for-bit identical
to the in-RAM path: the stored arrays hold the exact same values (uint32 vs
int64 ids are value-equal, and the engines normalise gathered ids to int64
before any arithmetic that could differ), pinned by the differential tests
in ``tests/graphs/test_binary_io.py`` and
``tests/parallel/test_mmap_attach.py``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.utils.exceptions import GraphFormatError

PathLike = Union[str, Path]

#: File magic of the repro graph exchange format.
RGX_MAGIC = b"RGX1"

#: Current format version.
RGX_VERSION = 1

#: Fixed header size in bytes (magic + fields + reserved padding).
HEADER_SIZE = 64

#: Alignment of every array section (cache-line / page friendly).
ALIGNMENT = 64

#: ``(name, dtype, length_of)`` of the array sections, in file order.
#: ``length_of`` is ``"n1"`` for ``n + 1`` entries or ``"m"`` for ``m``.
ARRAY_LAYOUT = (
    ("out_offsets", np.dtype("<i8"), "n1"),
    ("out_targets", np.dtype("<u4"), "m"),
    ("out_probs", np.dtype("<f8"), "m"),
    ("in_offsets", np.dtype("<i8"), "n1"),
    ("in_sources", np.dtype("<u4"), "m"),
    ("in_probs", np.dtype("<f8"), "m"),
)

#: Header struct: magic, version, n, m, flags, name_len, data_start.
_HEADER = struct.Struct("<4sIQQIIQ")

_FLAG_UNDIRECTED = 1

#: Header flag: the file carries a per-section CRC32 table after the last
#: array section.  Files without the flag (pre-checksum writers) read
#: exactly as before; files with it are byte-identical up to the table, so
#: older readers — whose size check is ``size < total`` — still load them.
_FLAG_CHECKSUMS = 2

#: Bytes per checksum-table entry (one little-endian uint32 CRC32).
_CHECKSUM_ENTRY = 4


@dataclass(frozen=True)
class RgxMapping:
    """How a graph's CSR arrays map onto a backing ``.rgx`` file.

    ``arrays`` maps the broker's array keys (``out_offsets`` …
    ``in_probs``) to ``(byte_offset, shape, dtype_str)`` triples.  A
    worker process can rebuild the exact arrays with one ``np.memmap``
    per entry — this is the picklable "attach by path" recipe.
    """

    path: str
    n: int
    m: int
    arrays: Dict[str, Tuple[int, Tuple[int, ...], str]]


def _aligned(offset: int) -> int:
    return (offset + ALIGNMENT - 1) // ALIGNMENT * ALIGNMENT


def _section_offsets(n: int, m: int, name_len: int) -> Tuple[Dict[str, Tuple[int, int]], int]:
    """Byte offset and length of every section; returns ``(sections, total)``."""
    offset = _aligned(HEADER_SIZE + name_len)
    data_start = offset
    sections: Dict[str, Tuple[int, int]] = {}
    for key, dtype, length_of in ARRAY_LAYOUT:
        count = n + 1 if length_of == "n1" else m
        sections[key] = (offset, count)
        offset = _aligned(offset + count * dtype.itemsize)
    return sections, offset, data_start


def _checksum_table_span(total: int) -> Tuple[int, int]:
    """``(offset, size)`` of the CRC32 table appended after the sections."""
    offset = _aligned(total)
    return offset, len(ARRAY_LAYOUT) * _CHECKSUM_ENTRY


def write_rgx(
    graph: ProbabilisticGraph, path: PathLike, checksums: bool = True
) -> Path:
    """Write ``graph`` to ``path`` in the binary ``.rgx`` format.

    The file round-trips exactly: ``n`` is stored explicitly, so graphs
    with isolated trailing nodes — which a plain edge list cannot
    represent — reload identically (``load_rgx(path) == graph``).

    With ``checksums=True`` (default) a CRC32 per array section is
    appended after the last section and flagged in the header, enabling
    ``load_rgx(path, verify=True)`` / :func:`verify_rgx` to detect silent
    on-disk corruption.  The sections themselves are byte-identical either
    way, so pre-checksum readers load checksummed files unchanged.
    """
    path = Path(path)
    n, m = graph.n, graph.m
    if n > 2**32:
        raise GraphFormatError(
            f"cannot write {path}: the .rgx format stores node ids as "
            f"uint32, which caps n at 2**32 ({n} nodes given); shard the "
            f"graph or extend the format with a 64-bit id section"
        )
    out_offsets, out_targets, out_probs = graph.out_csr()
    in_offsets, in_sources, in_probs = graph.in_csr()
    name_bytes = (graph.name or "").encode("utf-8")
    if len(name_bytes) > 2**16:
        name_bytes = name_bytes[: 2**16]
    sections, total, data_start = _section_offsets(n, m, len(name_bytes))
    arrays = {
        "out_offsets": np.ascontiguousarray(out_offsets, dtype="<i8"),
        "out_targets": np.ascontiguousarray(out_targets, dtype="<u4"),
        "out_probs": np.ascontiguousarray(out_probs, dtype="<f8"),
        "in_offsets": np.ascontiguousarray(in_offsets, dtype="<i8"),
        "in_sources": np.ascontiguousarray(in_sources, dtype="<u4"),
        "in_probs": np.ascontiguousarray(in_probs, dtype="<f8"),
    }
    flags = _FLAG_UNDIRECTED if graph.undirected_input else 0
    if checksums:
        flags |= _FLAG_CHECKSUMS
    header = _HEADER.pack(
        RGX_MAGIC, RGX_VERSION, n, m, flags, len(name_bytes), data_start
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(b"\x00" * (HEADER_SIZE - _HEADER.size))
        handle.write(name_bytes)
        crcs = []
        for key, dtype, _length_of in ARRAY_LAYOUT:
            offset, _count = sections[key]
            handle.seek(offset)
            payload = arrays[key].tobytes()
            handle.write(payload)
            crcs.append(zlib.crc32(payload) & 0xFFFFFFFF)
        handle.truncate(total)
        if checksums:
            table_offset, table_size = _checksum_table_span(total)
            handle.seek(table_offset)
            handle.write(np.asarray(crcs, dtype="<u4").tobytes())
            handle.truncate(table_offset + table_size)
    return path


def read_header(path: PathLike) -> Tuple[int, int, int, str, int]:
    """Parse and validate an ``.rgx`` header.

    Returns ``(n, m, flags, name, data_start)``; raises
    :class:`GraphFormatError` with an actionable message for anything that
    is not a well-formed version-1 file.
    """
    path = Path(path)
    if not path.exists():
        raise GraphFormatError(f"graph file not found: {path}")
    size = path.stat().st_size
    if size < HEADER_SIZE:
        raise GraphFormatError(
            f"{path}: file is {size} bytes, smaller than the fixed "
            f"{HEADER_SIZE}-byte .rgx header — truncated or not an .rgx file"
        )
    with open(path, "rb") as handle:
        raw = handle.read(HEADER_SIZE)
        magic, version, n, m, flags, name_len, data_start = _HEADER.unpack(
            raw[: _HEADER.size]
        )
        if magic != RGX_MAGIC:
            raise GraphFormatError(
                f"{path}: bad magic {magic!r} (expected {RGX_MAGIC!r}) — "
                f"not an .rgx graph file; text edge lists go through "
                f"repro.graphs.io.load_edge_list instead"
            )
        if version != RGX_VERSION:
            raise GraphFormatError(
                f"{path}: unsupported .rgx version {version} (this build "
                f"reads version {RGX_VERSION}); re-run "
                f"`repro-experiments convert-graph` with this library"
            )
        if n > 2**32:
            raise GraphFormatError(
                f"{path}: header claims n={n}, beyond the uint32 node-id "
                f"range of format version 1 — corrupt header"
            )
        if name_len > 2**16 or data_start < HEADER_SIZE or data_start > size:
            raise GraphFormatError(
                f"{path}: malformed header (name_len={name_len}, "
                f"data_start={data_start}, file size {size})"
            )
        handle.seek(HEADER_SIZE)
        name = handle.read(name_len).decode("utf-8", errors="replace")
    sections, total, expected_start = _section_offsets(int(n), int(m), name_len)
    if data_start != expected_start:
        raise GraphFormatError(
            f"{path}: malformed header (data_start={data_start}, expected "
            f"{expected_start} for n={n}, m={m}, name_len={name_len})"
        )
    if size < total:
        raise GraphFormatError(
            f"{path}: file is {size} bytes but n={n}, m={m} needs {total} — "
            f"the file is truncated; re-run the conversion"
        )
    return int(n), int(m), int(flags), name, int(data_start)


def verify_rgx(path: PathLike) -> Dict[str, int]:
    """Recompute and check every section CRC32 of a checksummed ``.rgx``.

    Returns ``{section: crc}`` on success.  Raises
    :class:`GraphFormatError` when any section's bytes no longer match
    their stored checksum (silent on-disk corruption, torn writes), when
    the checksum table itself is truncated, or when the file predates
    checksumming — an unchecksummed file *cannot* be verified, and saying
    so loudly beats a false "ok".
    """
    path = Path(path)
    n, m, flags, name, _data_start = read_header(path)
    if not flags & _FLAG_CHECKSUMS:
        raise GraphFormatError(
            f"{path}: file carries no section checksums (written by a "
            f"pre-checksum writer or with checksums=False) and cannot be "
            f"verified; re-run `repro-experiments convert-graph` to produce "
            f"a checksummed file"
        )
    name_len = len(name.encode("utf-8"))
    sections, total, _start = _section_offsets(n, m, name_len)
    table_offset, table_size = _checksum_table_span(total)
    size = path.stat().st_size
    if size < table_offset + table_size:
        raise GraphFormatError(
            f"{path}: checksum table is truncated (file is {size} bytes, "
            f"table ends at {table_offset + table_size}) — the file was cut "
            f"short after writing; re-run the conversion"
        )
    checked: Dict[str, int] = {}
    with open(path, "rb") as handle:
        handle.seek(table_offset)
        table = np.frombuffer(handle.read(table_size), dtype="<u4")
        for index, (key, dtype, _length_of) in enumerate(ARRAY_LAYOUT):
            offset, count = sections[key]
            handle.seek(offset)
            payload = handle.read(count * dtype.itemsize)
            if len(payload) != count * dtype.itemsize:
                raise GraphFormatError(
                    f"{path}: section {key!r} is truncated — re-run the "
                    f"conversion"
                )
            crc = zlib.crc32(payload) & 0xFFFFFFFF
            stored = int(table[index])
            if crc != stored:
                raise GraphFormatError(
                    f"{path}: checksum mismatch in section {key!r} (stored "
                    f"0x{stored:08x}, computed 0x{crc:08x}) — the file is "
                    f"corrupt on disk; re-run the conversion or restore it "
                    f"from a good copy"
                )
            checked[key] = crc
    return checked


def _mapping_for(path: Path, n: int, m: int, name_len: int) -> RgxMapping:
    sections, _total, _start = _section_offsets(n, m, name_len)
    arrays = {
        key: (sections[key][0], (sections[key][1],), dtype.str)
        for key, dtype, _length_of in ARRAY_LAYOUT
    }
    return RgxMapping(path=str(path.resolve()), n=n, m=m, arrays=arrays)


def map_rgx_arrays(mapping: RgxMapping) -> Dict[str, np.ndarray]:
    """Memory-map every CSR array described by ``mapping`` (read-only).

    This is the attach-by-path primitive the shared-memory broker hands to
    worker processes: one ``np.memmap`` per array, no copies, no segments.
    """
    path = Path(mapping.path)
    if not path.exists():
        raise GraphFormatError(
            f"backing graph file {path} does not exist; it was moved or "
            f"deleted while workers were attached — reconvert or restore it"
        )
    arrays: Dict[str, np.ndarray] = {}
    for key, (offset, shape, dtype) in mapping.arrays.items():
        arrays[key] = np.memmap(
            path, dtype=np.dtype(dtype), mode="r", offset=offset, shape=shape
        )
    return arrays


def load_rgx(
    path: PathLike, mmap: bool = True, verify: bool = False
) -> ProbabilisticGraph:
    """Load an ``.rgx`` graph.

    With ``mmap=True`` (default) the CSR arrays are read-only
    ``np.memmap`` views: the open is O(header), pages fault in on first
    touch, and one file serves every process on the host (the graph's
    :attr:`~repro.graphs.graph.ProbabilisticGraph.mmap_info` lets pool
    workers attach by path).  With ``mmap=False`` the arrays are read
    fully into RAM — the layout the historical constructors produce, used
    as the baseline in the ``graph_io`` benchmark.

    ``verify=True`` runs :func:`verify_rgx` first — a full sequential
    read checking every section against its stored CRC32 — and raises
    :class:`GraphFormatError` on corruption or on unchecksummed files.
    The default stays ``False``: verification costs one pass over the
    whole file, defeating the O(header) open that mmap exists for.
    """
    path = Path(path)
    if verify:
        verify_rgx(path)
    n, m, flags, name, _data_start = read_header(path)
    name_len = len(name.encode("utf-8"))
    mapping = _mapping_for(path, n, m, name_len)
    if mmap:
        arrays = map_rgx_arrays(mapping)
    else:
        arrays = {}
        with open(path, "rb") as handle:
            for key, (offset, shape, dtype) in mapping.arrays.items():
                handle.seek(offset)
                arrays[key] = np.fromfile(
                    handle, dtype=np.dtype(dtype), count=int(np.prod(shape))
                )
    graph = ProbabilisticGraph.from_csr_arrays(
        n,
        arrays["out_offsets"],
        arrays["out_targets"],
        arrays["out_probs"],
        arrays["in_offsets"],
        arrays["in_sources"],
        arrays["in_probs"],
        name=name,
        undirected_input=bool(flags & _FLAG_UNDIRECTED),
        mmap_info=mapping if mmap else None,
    )
    return graph


def convert_edge_list(
    source: PathLike,
    destination: PathLike,
    directed: bool = True,
    apply_weighted_cascade: bool = True,
    default_probability: float = 1.0,
    name: Optional[str] = None,
) -> Tuple[int, int]:
    """One-shot streaming conversion of a SNAP edge list to ``.rgx``.

    Parses the text file in fixed-size chunks through the vectorized
    reader (:func:`repro.graphs.io.load_edge_list` — no per-line Python
    tuples are ever materialised), builds the canonical CSR once, applies
    weighted-cascade probabilities when the file has no probability column
    (matching the paper's Section VI-A), and writes the binary file.
    Returns ``(n, m)`` of the converted graph.
    """
    from repro.graphs.io import load_edge_list

    graph = load_edge_list(
        source,
        directed=directed,
        name=name,
        apply_weighted_cascade=apply_weighted_cascade,
        default_probability=default_probability,
    )
    write_rgx(graph, destination)
    return graph.n, graph.m
