"""Probabilistic social-graph substrate.

Public surface:

* :class:`~repro.graphs.graph.ProbabilisticGraph` — CSR graph with edge
  probabilities under the Independent Cascade model.
* :class:`~repro.graphs.residual.ResidualGraph` — a graph view with nodes
  removed, used by the adaptive seeding loop.
* :mod:`~repro.graphs.weighting` — weighted-cascade / trivalency / uniform
  probability assignment.
* :mod:`~repro.graphs.generators` — synthetic graph generators.
* :mod:`~repro.graphs.datasets` — scaled proxies for the paper's datasets.
* :mod:`~repro.graphs.io` — SNAP-style edge-list reading/writing.
* :mod:`~repro.graphs.statistics` — Table II style summary statistics.
* :mod:`~repro.graphs.toy` — the Fig. 1 worked example.
"""

from repro.graphs import datasets, generators, io, statistics, toy, weighting
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual

__all__ = [
    "ProbabilisticGraph",
    "ResidualGraph",
    "as_residual",
    "datasets",
    "generators",
    "io",
    "statistics",
    "toy",
    "weighting",
]
