"""Random reverse-reachable (RR) set generation.

Reverse influence sampling (RIS, Borgs et al. 2014) is the estimation engine
behind the paper's noise-model algorithms.  A random RR set is built by

1. picking a root node uniformly at random among the nodes of the (residual)
   graph, and
2. running a reverse BFS from the root in which each incoming edge is
   traversed independently with its propagation probability.

The fundamental RIS identity is
``E[I_G(S)] = n * Pr[S intersects a random RR set]``,
so the fraction of RR sets a seed set covers is an unbiased spread
estimator.  On a residual graph ``G_i`` the same identity holds with ``n_i``
(the number of remaining nodes) in place of ``n`` — which is exactly how
Algorithms 3 and 4 scale their coverage counts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng


def generate_rr_set(
    view: ResidualGraph,
    rng: np.random.Generator,
    root: Optional[int] = None,
    active_nodes: Optional[np.ndarray] = None,
) -> Set[int]:
    """Generate one random RR set on ``view``.

    Parameters
    ----------
    view:
        Residual graph to sample on.
    rng:
        Random generator (coin flips and root selection).
    root:
        Optional fixed root (otherwise drawn uniformly from active nodes).
    active_nodes:
        Precomputed ``view.active_nodes()`` array; passing it avoids
        recomputing the mask when generating many RR sets in a loop.

    Returns
    -------
    set of int
        The nodes that reach the root through live edges (including the root
        itself).  Empty when the residual graph has no active node.
    """
    if root is None:
        if active_nodes is None:
            active_nodes = view.active_nodes()
        if active_nodes.size == 0:
            return set()
        root = int(active_nodes[rng.integers(0, active_nodes.size)])
    elif not view.is_active(int(root)):
        return set()

    rr_set: Set[int] = {int(root)}
    queue: deque[int] = deque([int(root)])
    while queue:
        node = queue.popleft()
        sources, probs, _ = view.in_neighbors(node)
        if sources.size == 0:
            continue
        flips = rng.random(sources.size) < probs
        for source, success in zip(sources.tolist(), flips.tolist()):
            if success and source not in rr_set:
                rr_set.add(source)
                queue.append(source)
    return rr_set


def generate_rr_sets(
    graph: ProbabilisticGraph | ResidualGraph,
    count: int,
    random_state: RandomState = None,
    backend: str = "vectorized",
) -> List[Set[int]]:
    """Generate ``count`` independent random RR sets on ``graph``.

    ``backend`` selects the sampling engine: ``"vectorized"`` (default) and
    ``"python"`` route through the batched engine of
    :mod:`repro.sampling.engine` and materialise its flat output as Python
    sets; ``"legacy"`` runs the historical per-set BFS of
    :func:`generate_rr_set` (one sequential RNG stream per batch, kept for
    reference and differential testing).
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    if backend not in ("vectorized", "python", "legacy"):
        raise ValidationError(
            f"unknown backend {backend!r}; available: vectorized, python, legacy"
        )
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    if backend != "legacy":
        from repro.sampling.engine import generate_rr_batch

        return generate_rr_batch(view, count, random_state, backend=backend).to_sets()
    rng = ensure_rng(random_state)
    active = view.active_nodes()
    return [generate_rr_set(view, rng, active_nodes=active) for _ in range(count)]


def rr_set_sizes(rr_sets: Iterable[Set[int]]) -> np.ndarray:
    """Array of RR-set sizes (useful for EPT-style cost accounting)."""
    return np.asarray([len(rr) for rr in rr_sets], dtype=np.int64)


def expected_rr_width(
    graph: ProbabilisticGraph | ResidualGraph,
    num_samples: int = 200,
    random_state: RandomState = None,
) -> float:
    """Empirical mean RR-set size, an estimate of the EPT quantity.

    The paper's complexity analysis (Theorem 3/5) is phrased in terms of the
    expected cost of generating one RR set; this helper measures it.
    """
    from repro.sampling.engine import generate_rr_batch

    sizes = generate_rr_batch(graph, num_samples, random_state).sizes()
    return float(sizes.mean()) if sizes.size else 0.0
