"""Reverse-influence-sampling substrate: RR sets, coverage, concentration bounds.

Architecture
------------
The sampling layer is organised around a batched, NumPy-vectorized engine:

* :mod:`repro.sampling.engine` — :func:`generate_rr_batch` grows a whole
  batch of RR sets simultaneously: roots are drawn with one bulk call, the
  reverse BFS advances frontier-at-a-time over *all* roots at once against
  the base graph's incoming CSR, the residual ``active`` mask is applied as
  a single vectorized filter, and each layer's coin flips are one bulk
  ``rng.random`` draw.  Output is an :class:`~repro.sampling.engine.RRBatch`
  in flat ``(offsets, nodes)`` form.
* :mod:`repro.sampling.flat_collection` —
  :class:`~repro.sampling.flat_collection.FlatRRCollection` wraps a batch
  with a CSR inverted index ``node -> rr_ids``; ``coverage`` /
  ``marginal_coverage`` / ``covered_mask`` are bincount/boolean-mask
  operations, ``extend`` is O(1) amortized, and the inverted index is
  extend-aware (append-merge, never a full rebuild).  Every algorithm in
  the repo (ADDATP, HATP, HNTP, the RIS oracle behind ADG, and the
  IMM/NSG/NDG baselines) samples through this path.
* :mod:`repro.sampling.coverage` —
  :class:`~repro.sampling.coverage.CoverageCounter` keeps ``CovR(S)`` and
  all per-node marginals as live counters, updated incrementally when the
  conditioning set grows/shrinks or the collection extends.  It powers the
  vectorized lazy greedy in the baselines and the ``sample_reuse`` paths
  of HATP/HNTP/ADDATP (samples carried across refinement rounds instead of
  regenerated).
* :mod:`repro.sampling.rr_sets` / :mod:`repro.sampling.rr_collection` — the
  historical per-set BFS and dict-indexed collection.  They remain fully
  supported as reference implementations.

Backend switch
--------------
Generation entry points (``generate_rr_batch``, ``generate_rr_sets``,
``RRCollection.generate``, ``FlatRRCollection.generate``) take a
``backend`` argument:

* ``"vectorized"`` (default) — the batched NumPy engine;
* ``"python"`` — a loop-based reference implementing the *same* RNG
  contract (bulk root draw, per-layer bulk coin flips in frontier order),
  so a shared seed yields bit-for-bit identical batches — this is what the
  differential tests assert;
* ``"legacy"`` (``generate_rr_sets`` only) — the original per-set BFS,
  which consumes the RNG stream per set and therefore matches the engine
  statistically but not bit-for-bit.

Parallelism
-----------
:mod:`repro.parallel` scales the engine across cores: a shared-memory
broker publishes the graph's CSR once, a persistent
:class:`~repro.parallel.pool.SamplingPool` runs the engine on batch
shards, and deterministic per-shard seed streams make the merged batch
bit-for-bit independent of the worker count.  Every generation entry
point accepts ``n_jobs`` (or the ``REPRO_JOBS`` environment variable);
see ``docs/parallelism.md``.

See ``docs/performance.md`` for measured speedups and benchmark
regeneration instructions (``benchmarks/test_bench_rr_engine.py``).
"""

from repro.sampling.bounds import (
    SpreadConfidenceInterval,
    additive_confidence_interval,
    additive_error_for_budget,
    hoeffding_sample_size,
    hoeffding_tail,
    hybrid_confidence_interval,
    hybrid_lower_tail,
    hybrid_sample_size,
    hybrid_upper_tail,
)
from repro.sampling.coverage import CoverageCounter
from repro.sampling.engine import RRBatch, generate_rr_batch, merge_rr_batches
from repro.sampling.estimators import (
    RISProfitEstimator,
    RISSpreadEstimator,
    choose_sample_size_like_hatp,
)
from repro.sampling.flat_collection import FlatRRCollection
from repro.sampling.rr_collection import RRCollection
from repro.sampling.rr_sets import (
    expected_rr_width,
    generate_rr_set,
    generate_rr_sets,
    rr_set_sizes,
)

__all__ = [
    "CoverageCounter",
    "FlatRRCollection",
    "RISProfitEstimator",
    "RISSpreadEstimator",
    "RRBatch",
    "RRCollection",
    "SpreadConfidenceInterval",
    "additive_confidence_interval",
    "additive_error_for_budget",
    "choose_sample_size_like_hatp",
    "expected_rr_width",
    "generate_rr_batch",
    "generate_rr_set",
    "generate_rr_sets",
    "hoeffding_sample_size",
    "hoeffding_tail",
    "hybrid_confidence_interval",
    "hybrid_lower_tail",
    "hybrid_sample_size",
    "hybrid_upper_tail",
    "merge_rr_batches",
    "rr_set_sizes",
]
