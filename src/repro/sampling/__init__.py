"""Reverse-influence-sampling substrate: RR sets, coverage, concentration bounds."""

from repro.sampling.bounds import (
    SpreadConfidenceInterval,
    additive_confidence_interval,
    additive_error_for_budget,
    hoeffding_sample_size,
    hoeffding_tail,
    hybrid_confidence_interval,
    hybrid_lower_tail,
    hybrid_sample_size,
    hybrid_upper_tail,
)
from repro.sampling.estimators import (
    RISProfitEstimator,
    RISSpreadEstimator,
    choose_sample_size_like_hatp,
)
from repro.sampling.rr_collection import RRCollection
from repro.sampling.rr_sets import (
    expected_rr_width,
    generate_rr_set,
    generate_rr_sets,
    rr_set_sizes,
)

__all__ = [
    "RISProfitEstimator",
    "RISSpreadEstimator",
    "RRCollection",
    "SpreadConfidenceInterval",
    "additive_confidence_interval",
    "additive_error_for_budget",
    "choose_sample_size_like_hatp",
    "expected_rr_width",
    "generate_rr_set",
    "generate_rr_sets",
    "hoeffding_sample_size",
    "hoeffding_tail",
    "hybrid_confidence_interval",
    "hybrid_lower_tail",
    "hybrid_sample_size",
    "hybrid_upper_tail",
    "rr_set_sizes",
]
