"""Growable disk-backed numpy arrays for out-of-core RR collections.

A :class:`SpillArray` is an append-mostly 1-D array whose storage is a
plain file, grown in fixed-size chunk increments (``os.truncate`` + a
fresh ``np.memmap``) and mapped ``MAP_SHARED``.  Two properties make it a
drop-in backing store for :class:`~repro.sampling.flat_collection.FlatRRCollection`:

* **Stable prefixes.**  The file only ever grows and bytes below the
  logical size are never rewritten by ``append``; because all maps of the
  same file are coherent (``MAP_SHARED``), a view handed out before a
  remap keeps reading correct data.
* **Evictable residency.**  :meth:`release` flushes dirty pages and
  advises the kernel the mapping is no longer needed
  (``MADV_DONTNEED``), dropping the pages from this process's RSS while
  the data stays on disk — the mechanism behind the ≥2x peak-RSS
  reduction the ``graph_io`` benchmark records.

Files live inside a pid-tagged spill directory
(``repro-spill-<pid>-<token>``, see
:func:`repro.parallel.janitor.tagged_spill_dir`) which the janitor removes
on interpreter exit / SIGTERM, and sweeps after SIGKILL via
``repro-experiments clean-shm``.
"""

from __future__ import annotations

import mmap as _mmap_module
import os
from typing import Optional

import numpy as np

#: Default growth increment of the backing file, in bytes.  Large enough
#: that remaps are rare (a 100M-member nodes array remaps ~100 times),
#: small enough that smoke-tier collections spill across several chunks.
DEFAULT_CHUNK_BYTES = 64 * 1024 * 1024


class SpillArray:
    """A growable 1-D array backed by a file in a spill directory.

    Parameters
    ----------
    path:
        Backing file (created empty; must not already exist).
    dtype:
        Element dtype.  Fixed for the array's lifetime.
    chunk_bytes:
        File growth increment; rounded up to a whole number of elements.
    """

    __slots__ = ("_path", "_dtype", "_chunk_items", "_size", "_capacity", "_map")

    def __init__(
        self,
        path: str,
        dtype: np.dtype,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        self._path = str(path)
        self._dtype = np.dtype(dtype)
        self._chunk_items = max(1, int(chunk_bytes) // self._dtype.itemsize)
        self._size = 0
        self._capacity = 0
        self._map: Optional[np.memmap] = None
        # Create (or truncate) the backing file eagerly so the spill dir
        # always reflects every live array.
        with open(self._path, "wb"):
            pass

    # ------------------------------------------------------------------ #
    # sizing
    # ------------------------------------------------------------------ #

    @property
    def path(self) -> str:
        return self._path

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def size(self) -> int:
        """Number of valid elements (logical length)."""
        return self._size

    @property
    def nbytes_on_disk(self) -> int:
        return self._capacity * self._dtype.itemsize

    def _grow_to(self, items: int) -> None:
        if items <= self._capacity:
            return
        chunks = (items + self._chunk_items - 1) // self._chunk_items
        new_capacity = chunks * self._chunk_items
        os.truncate(self._path, new_capacity * self._dtype.itemsize)
        self._capacity = new_capacity
        self._map = None  # stale map: remap lazily at the new size

    def _mapping(self) -> np.memmap:
        if self._map is None:
            self._map = np.memmap(
                self._path, dtype=self._dtype, mode="r+", shape=(self._capacity,)
            )
        return self._map

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def append(self, values: np.ndarray) -> None:
        """Append ``values`` (cast to the array dtype) past the logical end."""
        values = np.asarray(values)
        count = values.shape[0]
        if count == 0:
            return
        self._grow_to(self._size + count)
        mapping = self._mapping()
        mapping[self._size : self._size + count] = values
        self._size += count

    def scatter(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Write ``values`` at ``indices`` (all below the logical size)."""
        self._mapping()[indices] = values

    def resize(self, items: int) -> None:
        """Set the logical length (growing the file as needed).

        New elements are zero-filled (fresh file bytes read as zero).
        """
        self._grow_to(items)
        self._size = int(items)

    def clear(self) -> None:
        self._size = 0

    # ------------------------------------------------------------------ #
    # access / residency
    # ------------------------------------------------------------------ #

    def view(self) -> np.ndarray:
        """The valid prefix as a (memmap) array view — no copy."""
        if self._size == 0:
            return np.empty(0, dtype=self._dtype)
        return self._mapping()[: self._size]

    def release(self) -> None:
        """Flush dirty pages and drop them from this process's RSS.

        Data stays on disk; the next access page-faults it back in.  A
        no-op on platforms without ``madvise``.
        """
        if self._map is None:
            return
        self._map.flush()
        raw = getattr(self._map, "_mmap", None)
        if raw is not None and hasattr(raw, "madvise"):
            try:
                raw.madvise(_mmap_module.MADV_DONTNEED)
            except (AttributeError, OSError):  # pragma: no cover - platform
                pass

    def close(self, unlink: bool = True) -> None:
        """Drop the mapping and (by default) delete the backing file."""
        self._map = None
        self._size = 0
        self._capacity = 0
        if unlink:
            try:
                os.unlink(self._path)
            except FileNotFoundError:
                pass

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpillArray(path={self._path!r}, dtype={self._dtype}, "
            f"size={self._size}, capacity={self._capacity})"
        )
