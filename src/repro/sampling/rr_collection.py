"""Indexed collections of RR sets with coverage queries.

The noise-model algorithms repeatedly ask two questions of a batch of RR
sets ``R`` generated on a residual graph with ``n_i`` active nodes:

* ``CovR(S)`` — how many RR sets in ``R`` intersect the node set ``S``;
* ``CovR(u | S)`` — how many RR sets contain ``u`` but do **not** intersect
  ``S`` (marginal coverage).

With the RIS identity these give the spread estimators
``Ê[I(S)] = CovR(S) * n_i / |R|`` and
``Ê[I(u | S)] = CovR(u | S) * n_i / |R|``.

:class:`RRCollection` stores the RR sets together with an inverted index
``node -> RR-set ids`` so both queries cost time proportional to the RR sets
actually touched rather than to the whole collection.

This dict-indexed collection is the *reference* implementation: the
algorithms sample through the array-backed
:class:`repro.sampling.flat_collection.FlatRRCollection`, whose queries are
vectorized over flat int64 storage.  Both classes expose the same query
API, which is what the differential tests lean on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.rr_sets import generate_rr_sets
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState


class RRCollection:
    """A batch of RR sets with an inverted coverage index.

    Parameters
    ----------
    rr_sets:
        The RR sets (each a set of node ids).
    num_active_nodes:
        ``n_i`` of the residual graph the sets were generated on; used to
        scale coverage counts into spread estimates.
    """

    __slots__ = ("_rr_sets", "_node_index", "_num_active_nodes")

    def __init__(self, rr_sets: Sequence[Set[int]], num_active_nodes: int) -> None:
        if num_active_nodes < 0:
            raise ValidationError("num_active_nodes must be >= 0")
        self._rr_sets: List[Set[int]] = [set(rr) for rr in rr_sets]
        self._num_active_nodes = int(num_active_nodes)
        self._node_index: Dict[int, List[int]] = {}
        for rr_id, rr in enumerate(self._rr_sets):
            for node in rr:
                self._node_index.setdefault(node, []).append(rr_id)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        graph: ProbabilisticGraph | ResidualGraph,
        count: int,
        random_state: RandomState = None,
        backend: str = "vectorized",
    ) -> "RRCollection":
        """Generate ``count`` RR sets on ``graph`` and index them.

        The sets come from the batched engine by default (``backend`` as in
        :func:`repro.sampling.rr_sets.generate_rr_sets`); for array-native
        storage and vectorized coverage queries prefer
        :class:`repro.sampling.flat_collection.FlatRRCollection`.
        """
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        rr_sets = generate_rr_sets(view, count, random_state, backend=backend)
        return cls(rr_sets, view.num_active)

    def extend(self, rr_sets: Iterable[Set[int]]) -> None:
        """Append additional RR sets to the collection (index updated)."""
        start = len(self._rr_sets)
        for offset, rr in enumerate(rr_sets):
            rr = set(rr)
            self._rr_sets.append(rr)
            for node in rr:
                self._node_index.setdefault(node, []).append(start + offset)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_sets(self) -> int:
        """θ — the number of RR sets in the collection."""
        return len(self._rr_sets)

    @property
    def num_active_nodes(self) -> int:
        """``n_i`` of the residual graph the sets were sampled on."""
        return self._num_active_nodes

    @property
    def rr_sets(self) -> List[Set[int]]:
        """The raw RR sets (do not mutate)."""
        return self._rr_sets

    def sets_containing(self, node: int) -> List[int]:
        """Ids of the RR sets that contain ``node``."""
        return self._node_index.get(int(node), [])

    def nodes_appearing(self) -> np.ndarray:
        """Node ids appearing in at least one RR set (sorted).

        Read off the inverted index keys — no materialization of the sets.
        """
        return np.asarray(sorted(self._node_index), dtype=np.int64)

    def total_size(self) -> int:
        """Sum of RR-set sizes (a proxy for generation cost)."""
        return sum(len(rr) for rr in self._rr_sets)

    # ------------------------------------------------------------------ #
    # coverage queries
    # ------------------------------------------------------------------ #

    def coverage(self, nodes: Iterable[int]) -> int:
        """``CovR(S)``: number of RR sets intersecting ``nodes``."""
        node_list = [int(v) for v in nodes]
        if not node_list:
            return 0
        covered: Set[int] = set()
        for node in node_list:
            covered.update(self._node_index.get(node, ()))
        return len(covered)

    def covered_mask(self, nodes: Iterable[int]) -> np.ndarray:
        """Boolean array over RR-set ids marking the sets intersected by ``nodes``."""
        mask = np.zeros(self.num_sets, dtype=bool)
        for node in nodes:
            for rr_id in self._node_index.get(int(node), ()):
                mask[rr_id] = True
        return mask

    def marginal_coverage(self, node: int, conditioning_set: Iterable[int]) -> int:
        """``CovR(u | S)``: RR sets containing ``u`` but disjoint from ``S``."""
        node = int(node)
        conditioning = {int(v) for v in conditioning_set}
        conditioning.discard(node)
        count = 0
        for rr_id in self._node_index.get(node, ()):
            if conditioning.isdisjoint(self._rr_sets[rr_id]):
                count += 1
        return count

    # ------------------------------------------------------------------ #
    # spread estimation
    # ------------------------------------------------------------------ #

    def estimate_spread(self, nodes: Iterable[int]) -> float:
        """``Ê[I(S)] = CovR(S) * n_i / θ`` (0 when the collection is empty)."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) * self._num_active_nodes / self.num_sets

    def estimate_marginal_spread(self, node: int, conditioning_set: Iterable[int]) -> float:
        """``Ê[I(u | S)] = CovR(u | S) * n_i / θ``."""
        if self.num_sets == 0:
            return 0.0
        return (
            self.marginal_coverage(node, conditioning_set)
            * self._num_active_nodes
            / self.num_sets
        )

    def estimate_fraction(self, nodes: Iterable[int]) -> float:
        """Covered fraction ``CovR(S)/θ`` — the ``[0, 1]`` random variable of Lemma 7."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) / self.num_sets

    def __len__(self) -> int:
        return self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RRCollection sets={self.num_sets} n_i={self._num_active_nodes}>"
