"""Concentration bounds and sample-size calculators.

Two bounds drive the paper's noise-model algorithms:

* **Hoeffding's inequality** (Lemma 4) — bounds the probability that the
  empirical mean of ``θ`` bounded i.i.d. variables deviates from its
  expectation by more than an *additive* error ``ζ``.  ADDATP (Algorithm 3)
  chooses ``θ = ln(8/δ) / (2 ζ²)`` so that both of its two estimates are
  within ``n_i ζ`` of their means with probability ``1 − δ/2`` each.
* **Relative+Additive concentration** (Lemma 7) — a martingale bound that
  mixes a relative error ``ε`` with an additive error ``ζ``; HATP
  (Algorithm 4) chooses ``θ = (1 + ε/3)² ln(4/δ) / (2 ε ζ)``.

All functions work on the normalised ``[0, 1]`` coverage fraction
``X = CovR(S)/θ`` whose expectation is ``E[I(S)]/n_i``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require, require_positive, require_probability


# --------------------------------------------------------------------------- #
# Hoeffding (additive error)
# --------------------------------------------------------------------------- #


def hoeffding_tail(num_samples: int, additive_error: float) -> float:
    """Two-sided Hoeffding tail ``2 exp(-2 θ ζ²)`` for ``[0, 1]`` variables."""
    require_positive(num_samples, "num_samples")
    require_probability(additive_error, "additive_error")
    return 2.0 * math.exp(-2.0 * num_samples * additive_error**2)


def hoeffding_sample_size(
    additive_error: float, failure_probability: float, numerator: float = 8.0
) -> int:
    """Samples needed so the Hoeffding tail is below ``failure_probability``.

    The paper's Algorithm 3 uses ``θ = ln(8/δ) / (2 ζ²)`` (``numerator=8``
    accounts for the union bound over the two estimates and both tails).
    """
    require_probability(additive_error, "additive_error")
    require_positive(failure_probability, "failure_probability")
    require_positive(numerator, "numerator")
    return max(1, math.ceil(math.log(numerator / failure_probability) / (2.0 * additive_error**2)))


def additive_error_for_budget(num_samples: int, failure_probability: float, numerator: float = 8.0) -> float:
    """Invert :func:`hoeffding_sample_size`: the ζ achievable with ``num_samples``."""
    require_positive(num_samples, "num_samples")
    require_positive(failure_probability, "failure_probability")
    return math.sqrt(math.log(numerator / failure_probability) / (2.0 * num_samples))


# --------------------------------------------------------------------------- #
# Relative + additive (hybrid error, Lemma 7)
# --------------------------------------------------------------------------- #


def hybrid_upper_tail(num_samples: int, relative_error: float, additive_error: float) -> float:
    """``Pr[X ≥ (1+ε)µ + ζ] ≤ exp(−2θεζ / (1+ε/3)²)`` (Lemma 7, eq. 10)."""
    require_positive(num_samples, "num_samples")
    require_probability(relative_error, "relative_error")
    require_probability(additive_error, "additive_error")
    exponent = 2.0 * num_samples * relative_error * additive_error / (1.0 + relative_error / 3.0) ** 2
    return math.exp(-exponent)


def hybrid_lower_tail(num_samples: int, relative_error: float, additive_error: float) -> float:
    """``Pr[X ≤ (1−ε)µ − ζ] ≤ exp(−2θεζ)`` (Lemma 7, eq. 11)."""
    require_positive(num_samples, "num_samples")
    require_probability(relative_error, "relative_error")
    require_probability(additive_error, "additive_error")
    return math.exp(-2.0 * num_samples * relative_error * additive_error)


def hybrid_sample_size(
    relative_error: float,
    additive_error: float,
    failure_probability: float,
    numerator: float = 4.0,
) -> int:
    """Samples per batch used by HATP: ``θ = (1+ε/3)² ln(numerator/δ) / (2εζ)``."""
    require_probability(relative_error, "relative_error")
    require_probability(additive_error, "additive_error")
    require_positive(failure_probability, "failure_probability")
    theta = (
        (1.0 + relative_error / 3.0) ** 2
        * math.log(numerator / failure_probability)
        / (2.0 * relative_error * additive_error)
    )
    return max(1, math.ceil(theta))


# --------------------------------------------------------------------------- #
# Confidence-interval helpers
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class SpreadConfidenceInterval:
    """A (possibly one-sided) confidence interval on an expected spread."""

    estimate: float
    lower: float
    upper: float
    failure_probability: float

    @property
    def width(self) -> float:
        """Upper minus lower bound."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether ``value`` falls inside the interval."""
        return self.lower <= value <= self.upper


def additive_confidence_interval(
    coverage: int,
    num_samples: int,
    num_active_nodes: int,
    additive_error: float,
    failure_probability: float,
) -> SpreadConfidenceInterval:
    """Additive-error CI around the RIS spread estimate (ADDATP's view).

    With probability at least ``1 − failure_probability`` the true expected
    spread lies in ``estimate ± n_i ζ``.
    """
    require(num_samples > 0, "num_samples must be positive")
    estimate = coverage * num_active_nodes / num_samples
    margin = num_active_nodes * additive_error
    return SpreadConfidenceInterval(
        estimate=estimate,
        lower=max(0.0, estimate - margin),
        upper=min(float(num_active_nodes), estimate + margin),
        failure_probability=failure_probability,
    )


def hybrid_confidence_interval(
    coverage: int,
    num_samples: int,
    num_active_nodes: int,
    relative_error: float,
    additive_error: float,
    failure_probability: float,
) -> SpreadConfidenceInterval:
    """Hybrid-error CI (HATP's view): ``[(est − n_iζ)/(1+ε), (est + n_iζ)/(1−ε)]``.

    Derived from Lemma 7: ``X ≤ (1+ε)µ + ζ`` implies ``µ ≥ (X − ζ)/(1+ε)``
    and ``X ≥ (1−ε)µ − ζ`` implies ``µ ≤ (X + ζ)/(1−ε)``.
    """
    require(num_samples > 0, "num_samples must be positive")
    require(relative_error < 1.0, "relative_error must be < 1")
    estimate = coverage * num_active_nodes / num_samples
    additive_margin = num_active_nodes * additive_error
    lower = (estimate - additive_margin) / (1.0 + relative_error)
    upper = (estimate + additive_margin) / (1.0 - relative_error)
    return SpreadConfidenceInterval(
        estimate=estimate,
        lower=max(0.0, lower),
        upper=max(0.0, upper),
        failure_probability=failure_probability,
    )
