"""Batched, vectorized generation of random reverse-reachable (RR) sets.

This module is the sampling back end of the whole library.  Instead of
building RR sets one at a time with a per-node Python BFS (the historical
path in :mod:`repro.sampling.rr_sets`), the engine grows *all* RR sets of a
batch simultaneously:

1. every root is drawn in one bulk ``rng.integers`` call over the active
   nodes of the residual view;
2. the reverse BFS advances frontier-at-a-time across the whole batch — one
   expansion gathers the incoming CSR slices of every frontier node of every
   RR set at once, applies the residual ``active`` mask as a single
   vectorized filter, and draws all coin flips of the layer with one
   ``rng.random`` call;
3. discovered ``(rr_id, node)`` pairs are deduplicated with sorted int64
   keys, so membership checks are ``np.searchsorted`` instead of per-set
   Python ``set`` lookups.

The result is a :class:`RRBatch`: the batch in flat CSR-like form
``(offsets, nodes)``, ready to be wrapped by
:class:`repro.sampling.flat_collection.FlatRRCollection` without any
per-set Python objects.

Backends
--------
``generate_rr_batch`` dispatches through the kernel registry
(:mod:`repro.kernels`): ``backend=None`` (the default) honours the
``REPRO_BACKEND`` environment variable and falls back to ``"vectorized"``;
``"auto"`` picks the fastest available backend; explicit names
(``"vectorized"``, ``"python"``, ``"numba"``, ``"native"``) select one
implementation.  The Python backend is a deliberately simple loop-based
reference implementation of *exactly the same algorithm*: it draws its
roots with the same single bulk call and consumes the same coin-flip
stream in the same frontier order, so for any shared seed every backend
produces bit-for-bit identical batches.  That property is what the
differential tests (``tests/sampling/test_engine_differential.py``) pin
down; the reference backend is the executable specification of the engine's
RNG contract, and it is why ``"auto"`` is stream-safe.

The historical per-set path (:func:`repro.sampling.rr_sets.generate_rr_set`)
remains available as well; it consumes the stream per set rather than per
layer, so it matches the engine statistically but not bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

import numpy as np

from repro import kernels
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

#: The historical reference backend names (the full set of recognised
#: values — including compiled backends — lives in the kernel registry;
#: see :func:`repro.kernels.registered_backends`).
BACKENDS = ("vectorized", "python")


@dataclass(frozen=True)
class RRBatch:
    """A batch of RR sets in flat CSR-like form.

    ``nodes[offsets[i]:offsets[i + 1]]`` are the members of RR set ``i`` in
    discovery (BFS) order, root first.  ``num_active_nodes`` is ``n_i`` of
    the residual view the batch was sampled on (the RIS scaling factor) and
    ``n`` is the node-id universe of the base graph.
    """

    offsets: np.ndarray
    nodes: np.ndarray
    num_active_nodes: int
    n: int

    def __len__(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def num_sets(self) -> int:
        """Number of RR sets in the batch."""
        return len(self)

    def sizes(self) -> np.ndarray:
        """Array of RR-set sizes."""
        return np.diff(self.offsets)

    def set_at(self, index: int) -> np.ndarray:
        """Members of RR set ``index`` (a read-only view, discovery order)."""
        return self.nodes[self.offsets[index] : self.offsets[index + 1]]

    def to_sets(self) -> List[Set[int]]:
        """Materialise the batch as a list of Python sets (compat shim)."""
        offsets = self.offsets
        node_list = self.nodes.tolist()
        return [
            set(node_list[offsets[i] : offsets[i + 1]]) for i in range(len(self))
        ]

    def slice(self, start: int, stop: int) -> "RRBatch":
        """Sub-batch holding RR sets ``start:stop`` (offsets rebased to 0)."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise ValidationError(
                f"slice [{start}, {stop}) out of range for {len(self)} sets"
            )
        lo, hi = self.offsets[start], self.offsets[stop]
        return RRBatch(
            offsets=self.offsets[start : stop + 1] - lo,
            nodes=self.nodes[lo:hi],
            num_active_nodes=self.num_active_nodes,
            n=self.n,
        )


def flat_slice_indices(starts: np.ndarray, degrees: np.ndarray) -> np.ndarray:
    """Flat indices addressing many CSR slices at once.

    For slice ``i`` covering ``starts[i] .. starts[i] + degrees[i]``, the
    result concatenates all slice positions in order with a single
    repeat/arange construction (no Python loop over slices).
    """
    total = int(degrees.sum())
    cum = np.cumsum(degrees) - degrees
    return np.arange(total, dtype=np.int64) + np.repeat(starts - cum, degrees)


def merge_rr_batches(batches: Sequence[RRBatch]) -> RRBatch:
    """Concatenate flat batches into one without re-walking any RR set.

    This is the merge step of the parallel sampling subsystem
    (:mod:`repro.parallel`): worker shards come back as independent
    ``(offsets, nodes)`` pairs and are stitched together by shifting each
    shard's offsets by the running total — pure array arithmetic, no
    per-set Python objects.  All batches must share ``num_active_nodes``
    (they were sampled on the same residual view); ``n`` is the maximum
    node-id universe.
    """
    if not batches:
        raise ValidationError("merge_rr_batches requires at least one batch")
    if len(batches) == 1:
        return batches[0]
    first = batches[0]
    for batch in batches[1:]:
        if batch.num_active_nodes != first.num_active_nodes:
            raise ValidationError(
                "cannot merge batches sampled on different residual views "
                f"(num_active_nodes {batch.num_active_nodes} != {first.num_active_nodes})"
            )
    offsets_parts = [first.offsets]
    nodes_parts = [first.nodes]
    shift = int(first.offsets[-1])
    for batch in batches[1:]:
        offsets_parts.append(batch.offsets[1:] + shift)
        nodes_parts.append(batch.nodes)
        shift += int(batch.offsets[-1])
    return RRBatch(
        offsets=np.concatenate(offsets_parts),
        nodes=np.concatenate(nodes_parts),
        num_active_nodes=first.num_active_nodes,
        n=max(batch.n for batch in batches),
    )


def _empty_batch(count: int, num_active_nodes: int, n: int) -> RRBatch:
    return RRBatch(
        offsets=np.zeros(count + 1, dtype=np.int64),
        nodes=np.zeros(0, dtype=np.int64),
        num_active_nodes=num_active_nodes,
        n=n,
    )


def _draw_roots(
    view: ResidualGraph,
    count: int,
    rng: np.random.Generator,
    roots: Optional[Sequence[int]],
) -> Optional[np.ndarray]:
    """Resolve the batch's roots (shared by both backends).

    Returns ``None`` when the residual view has no active node and roots
    were not supplied — in that case no randomness is consumed at all,
    mirroring the historical behaviour of ``generate_rr_sets``.
    """
    if roots is not None:
        root_array = np.asarray(roots, dtype=np.int64)
        if root_array.shape != (count,):
            raise ValidationError(
                f"roots must have shape ({count},), got {root_array.shape}"
            )
        if root_array.size and (
            root_array.min() < 0 or root_array.max() >= view.n
        ):
            raise ValidationError("roots contains invalid node ids")
        return root_array
    active = view.active_nodes()
    if active.size == 0:
        return None
    return active[rng.integers(0, active.size, size=count)]


def generate_rr_batch(
    graph: ProbabilisticGraph | ResidualGraph,
    count: int,
    random_state: RandomState = None,
    backend: Optional[str] = None,
    roots: Optional[Sequence[int]] = None,
) -> RRBatch:
    """Generate ``count`` independent RR sets on ``graph`` as one flat batch.

    Parameters
    ----------
    graph:
        Graph or residual view to sample on.
    count:
        Number of RR sets.
    random_state:
        Seed / generator; every backend consumes it identically.
    backend:
        Kernel backend name resolved through the registry
        (:func:`repro.kernels.resolve_backend`): ``None`` honours
        ``REPRO_BACKEND`` and defaults to ``"vectorized"``; ``"auto"``
        picks the fastest available backend — every backend is
        bit-for-bit identical, so the choice never changes the batch.
    roots:
        Optional fixed roots, one per RR set (inactive roots yield empty
        sets).  When omitted, roots are drawn uniformly from the active
        nodes with a single bulk call.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    spec = kernels.get_backend(backend)
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    num_active = view.num_active
    if count == 0:
        return _empty_batch(0, num_active, view.n)
    rng = ensure_rng(random_state)
    root_array = _draw_roots(view, count, rng, roots)
    if root_array is None:
        return _empty_batch(count, num_active, view.n)
    return spec.generate_batch(view, root_array, rng)


# --------------------------------------------------------------------- #
# vectorized backend
# --------------------------------------------------------------------- #


def _generate_batch_vectorized(
    view: ResidualGraph, roots: np.ndarray, rng: np.random.Generator
) -> RRBatch:
    base = view.base
    n = base.n
    active = view.active_mask
    # prepare_csr centralizes the uint32 -> int64 handling of mmap'd
    # ``.rgx`` node arrays: gathered slices upcast through ``csr.gather``.
    csr = kernels.prepare_csr(
        *base.in_csr(), capabilities=kernels.backend_capabilities("vectorized")
    )
    in_offsets, in_probs = csr.offsets, csr.probs
    count = roots.shape[0]

    rr_ids = np.arange(count, dtype=np.int64)
    live = active[roots]
    frontier_rr = rr_ids[live]
    frontier_nodes = roots[live].astype(np.int64, copy=False)

    # Sorted (rr_id * n + node) keys of everything discovered so far; node
    # ids are < n so the key uniquely encodes the pair in one int64.
    visited_keys = frontier_rr * n + frontier_nodes  # sorted: rr-major
    member_rr = [frontier_rr]
    member_nodes = [frontier_nodes]

    while frontier_nodes.size:
        starts = in_offsets[frontier_nodes]
        degrees = in_offsets[frontier_nodes + 1] - starts
        total = int(degrees.sum())
        if total == 0:
            break
        # Flat indices of every in-edge of the frontier, in frontier order.
        edge_idx = flat_slice_indices(starts, degrees)
        expand_rr = np.repeat(frontier_rr, degrees)
        sources = csr.gather(edge_idx)
        # Residual filter first: coins are only flipped for live edges, so
        # the flip stream is independent of inactive clutter (and matches
        # the per-node reference, which filters before flipping too).
        keep = active[sources]
        sources = sources[keep]
        probs = in_probs[edge_idx[keep]]
        expand_rr = expand_rr[keep]
        if sources.size == 0:
            break
        flips = rng.random(sources.size) < probs
        sources = sources[flips]
        expand_rr = expand_rr[flips]
        if sources.size == 0:
            break
        keys = expand_rr * n + sources
        # Drop pairs already discovered in earlier layers ...
        pos = np.searchsorted(visited_keys, keys)
        pos_clipped = np.minimum(pos, visited_keys.size - 1)
        fresh = visited_keys[pos_clipped] != keys
        keys = keys[fresh]
        sources = sources[fresh]
        expand_rr = expand_rr[fresh]
        if keys.size == 0:
            break
        # ... and duplicates within this expansion, keeping the first
        # occurrence (np.unique sorts stably when return_index is set).
        unique_keys, first_idx = np.unique(keys, return_index=True)
        order = np.sort(first_idx)
        frontier_nodes = sources[order]
        frontier_rr = expand_rr[order]
        visited_keys = np.concatenate([visited_keys, unique_keys])
        visited_keys.sort(kind="stable")
        member_rr.append(frontier_rr)
        member_nodes.append(frontier_nodes)

    all_rr = np.concatenate(member_rr)
    all_nodes = np.concatenate(member_nodes)
    grouping = np.argsort(all_rr, kind="stable")
    sizes = np.bincount(all_rr, minlength=count)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return RRBatch(
        offsets=offsets,
        nodes=all_nodes[grouping],
        num_active_nodes=view.num_active,
        n=n,
    )


# --------------------------------------------------------------------- #
# python reference backend
# --------------------------------------------------------------------- #


def _generate_batch_python(
    view: ResidualGraph, roots: np.ndarray, rng: np.random.Generator
) -> RRBatch:
    """Loop-based reference with the exact RNG contract of the fast path.

    Kept intentionally naive (Python lists, sets and scalar loops): its only
    job is to be obviously correct so the vectorized backend can be checked
    against it seed-for-seed.
    """
    n = view.n
    count = roots.shape[0]
    members: List[List[int]] = [[] for _ in range(count)]
    seen: List[Set[int]] = [set() for _ in range(count)]

    frontier: List[tuple] = []
    for rr_id, root in enumerate(roots.tolist()):
        if view.is_active(root):
            members[rr_id].append(root)
            seen[rr_id].add(root)
            frontier.append((rr_id, root))

    while frontier:
        # Gather the layer's live in-edges in frontier order, then flip all
        # coins with one bulk draw (same stream as the vectorized backend).
        layer: List[tuple] = []
        for rr_id, node in frontier:
            sources, probs, _ = view.in_neighbors(node)
            for source, prob in zip(sources.tolist(), probs.tolist()):
                layer.append((rr_id, source, prob))
        if not layer:
            break
        flips = rng.random(len(layer))
        next_frontier: List[tuple] = []
        for (rr_id, source, prob), flip in zip(layer, flips.tolist()):
            if flip < prob and source not in seen[rr_id]:
                seen[rr_id].add(source)
                members[rr_id].append(source)
                next_frontier.append((rr_id, source))
        frontier = next_frontier

    sizes = np.asarray([len(member) for member in members], dtype=np.int64)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = [node for member in members for node in member]
    return RRBatch(
        offsets=offsets,
        nodes=np.asarray(flat, dtype=np.int64),
        num_active_nodes=view.num_active,
        n=n,
    )
