"""Stateful, incrementally-maintained coverage counters over RR collections.

Every noise-model algorithm in this repository ultimately asks one of two
questions of a batch of RR sets: ``CovR(S)`` and the marginal
``CovR(u | S)``.  :class:`~repro.sampling.flat_collection.FlatRRCollection`
answers them *statelessly* — each ``marginal_coverage`` call rebuilds the
covered mask of the whole conditioning set from scratch.  That is fine for
one-shot queries but wasteful for the two access patterns that dominate the
hot loops:

* **greedy selection** (IMM / NSG / NDG / the oracle's target builder):
  the conditioning set grows by one node per pick, yet every pick used to
  rescan every candidate's ``sets_containing`` list against the mask;
* **refinement rounds with sample reuse** (HATP / HNTP / ADDATP with
  ``sample_reuse=True``): the conditioning set is fixed while the
  collection grows by ``θ_i − θ_{i−1}`` sets per round, yet each round
  used to re-scan all ``θ_i`` sets.

:class:`CoverageCounter` maintains both directions incrementally:

* ``cover_counts[j] = |RR_j ∩ S|`` per RR set (a multiset count, so nodes
  can also be *removed* from ``S`` — NDG's shrinking rear set);
* ``marginal_counts[v]`` = number of *uncovered* RR sets containing ``v``
  for every node at once — whole-array ``argmax`` over it is the
  vectorized lazy-greedy selection rule.

Updates are cover-and-subtract passes over the collection's CSR storage:
adding nodes to ``S`` gathers the touched rr ids through the inverted
index, finds the newly covered sets, and subtracts their members from the
per-node counts with one ``bincount``; :meth:`sync` absorbs collection
growth by counting ``|RR_j ∩ S|`` for the appended sets only.  All state
is exact (integer counts), so every query agrees bit-for-bit with the
stateless :meth:`FlatRRCollection.marginal_coverage` — the property the
differential tests in ``tests/sampling/test_coverage_counter.py`` pin.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.sampling.engine import flat_slice_indices
from repro.sampling.flat_collection import FlatRRCollection
from repro.utils.exceptions import ValidationError


class CoverageCounter:
    """Incremental ``CovR(S)`` / ``CovR(u | S)`` state over a collection.

    Parameters
    ----------
    collection:
        The :class:`FlatRRCollection` to track.  The counter holds a
        reference and transparently absorbs later ``extend`` /
        ``extend_generate`` growth (see :meth:`sync`); it never mutates
        the collection.
    conditioning:
        Initial conditioning set ``S`` (defaults to empty).
    """

    __slots__ = (
        "_collection",
        "_in_set",
        "_cover_counts",
        "_marginal",
        "_num_synced",
        "_num_covered",
    )

    def __init__(
        self, collection: FlatRRCollection, conditioning: Iterable[int] = ()
    ) -> None:
        self._collection = collection
        offsets, nodes = collection.flat()
        n = collection.n
        num_sets = int(offsets.shape[0] - 1)
        self._in_set = np.zeros(n, dtype=bool)
        self._cover_counts = np.zeros(num_sets, dtype=np.int64)
        self._marginal = np.bincount(nodes, minlength=n).astype(np.int64, copy=False)
        self._num_synced = num_sets
        self._num_covered = 0
        self.add(conditioning)

    # ------------------------------------------------------------------ #
    # state accessors
    # ------------------------------------------------------------------ #

    @property
    def collection(self) -> FlatRRCollection:
        """The tracked collection."""
        return self._collection

    @property
    def num_synced_sets(self) -> int:
        """RR sets of the collection currently folded into the counters."""
        return self._num_synced

    @property
    def marginal_counts(self) -> np.ndarray:
        """Per-node ``CovR(v | S)`` for every ``v ∉ S`` at once (do not mutate).

        Entry ``v`` is the number of RR sets containing ``v`` that are
        disjoint from the conditioning set; nodes *in* the conditioning set
        read 0 (all their sets are covered).  This is the array the
        vectorized lazy greedy takes its ``argmax`` over.
        """
        self.sync()
        return self._marginal

    def conditioning_nodes(self) -> np.ndarray:
        """The current conditioning set ``S`` as a sorted id array."""
        return np.nonzero(self._in_set)[0]

    def contains(self, node: int) -> bool:
        """Whether ``node`` is currently in the conditioning set."""
        node = int(node)
        return 0 <= node < self._in_set.shape[0] and bool(self._in_set[node])

    # ------------------------------------------------------------------ #
    # incremental updates
    # ------------------------------------------------------------------ #

    def sync(self) -> int:
        """Fold any RR sets appended to the collection into the counters.

        Called automatically by every query/update, so callers that extend
        the underlying collection (sample reuse across refinement rounds)
        never need to rebuild anything.  Returns the number of sets
        absorbed.  Cost is linear in the *appended* portion only.
        """
        offsets, nodes = self._collection.flat()
        n = self._collection.n
        if n > self._marginal.shape[0]:
            grow = n - self._marginal.shape[0]
            self._marginal = np.concatenate(
                [self._marginal, np.zeros(grow, dtype=np.int64)]
            )
            self._in_set = np.concatenate([self._in_set, np.zeros(grow, dtype=bool)])
        num_sets = int(offsets.shape[0] - 1)
        if num_sets == self._num_synced:
            return 0
        if num_sets < self._num_synced:
            raise ValidationError(
                "tracked collection shrank; CoverageCounter requires append-only growth"
            )
        synced = self._num_synced
        start = int(offsets[synced])
        segment_nodes = nodes[start:]
        segment_sizes = np.diff(offsets[synced:])
        relative_rr = np.repeat(
            np.arange(num_sets - synced, dtype=np.int64), segment_sizes
        )
        in_set = self._in_set[segment_nodes]
        new_cover = np.bincount(
            relative_rr[in_set], minlength=num_sets - synced
        ).astype(np.int64, copy=False)
        self._cover_counts = np.concatenate([self._cover_counts, new_cover])
        covered_new = new_cover > 0
        self._num_covered += int(np.count_nonzero(covered_new))
        uncovered_members = segment_nodes[~covered_new[relative_rr]]
        if uncovered_members.size:
            self._marginal += np.bincount(
                uncovered_members, minlength=self._marginal.shape[0]
            )
        self._num_synced = num_sets
        return num_sets - synced

    def add(self, nodes: Iterable[int]) -> None:
        """Grow the conditioning set: ``S ← S ∪ nodes`` (cover-and-subtract).

        Newly covered RR sets are found with one gather over the inverted
        index; their members are subtracted from ``marginal_counts`` with
        one ``bincount``.  Nodes already in ``S`` (or out of range) are
        ignored.
        """
        self.sync()
        node_array = self._new_members(nodes, expected_state=False)
        if node_array.size == 0:
            return
        self._in_set[node_array] = True
        ids = self._collection.covering_ids(node_array)
        if ids.size == 0:
            return
        increments = np.bincount(ids, minlength=self._cover_counts.shape[0])
        newly_covered = np.nonzero((self._cover_counts == 0) & (increments > 0))[0]
        self._cover_counts += increments
        if newly_covered.size:
            self._num_covered += int(newly_covered.size)
            self._marginal -= self._members_bincount(newly_covered)

    def remove(self, nodes: Iterable[int]) -> None:
        """Shrink the conditioning set: ``S ← S \\ nodes``.

        RR sets whose cover count drops to zero become uncovered again and
        their members are added back to ``marginal_counts`` — this is what
        lets NDG track its *shrinking* rear conditioning set without any
        recount.
        """
        self.sync()
        node_array = self._new_members(nodes, expected_state=True)
        if node_array.size == 0:
            return
        self._in_set[node_array] = False
        ids = self._collection.covering_ids(node_array)
        if ids.size == 0:
            return
        decrements = np.bincount(ids, minlength=self._cover_counts.shape[0])
        self._cover_counts -= decrements
        freed = np.nonzero((self._cover_counts == 0) & (decrements > 0))[0]
        if freed.size:
            self._num_covered -= int(freed.size)
            self._marginal += self._members_bincount(freed)

    # ------------------------------------------------------------------ #
    # coverage queries
    # ------------------------------------------------------------------ #

    def coverage(self) -> int:
        """``CovR(S)``: RR sets intersected by the conditioning set."""
        self.sync()
        return self._num_covered

    def marginal_count(self, node: int) -> int:
        """``CovR(u | S \\ {u})`` — same exclusion rule as ``marginal_coverage``.

        For ``u ∉ S`` this is an O(1) read of ``marginal_counts``; for
        ``u ∈ S`` it counts the sets containing ``u`` whose only cover is
        ``u`` itself (one gather over ``sets_containing(u)``).
        """
        self.sync()
        node = int(node)
        if not 0 <= node < self._marginal.shape[0]:
            return 0
        if self._in_set[node]:
            ids = self._collection.sets_containing(node)
            if ids.size == 0:
                return 0
            return int(np.count_nonzero(self._cover_counts[ids] == 1))
        return int(self._marginal[node])

    # ------------------------------------------------------------------ #
    # spread estimation (RIS identity, mirrors FlatRRCollection)
    # ------------------------------------------------------------------ #

    def estimate_spread(self) -> float:
        """``Ê[I(S)] = CovR(S) · n_i / θ`` for the tracked conditioning set."""
        collection = self._collection
        if collection.num_sets == 0:
            return 0.0
        return self.coverage() * collection.num_active_nodes / collection.num_sets

    def estimate_marginal_spread(self, node: int) -> float:
        """``Ê[I(u | S)] = CovR(u | S) · n_i / θ`` from the live counters."""
        collection = self._collection
        if collection.num_sets == 0:
            return 0.0
        return (
            self.marginal_count(node)
            * collection.num_active_nodes
            / collection.num_sets
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _new_members(
        self, nodes: Iterable[int], expected_state: bool
    ) -> np.ndarray:
        """Unique in-range ids whose membership bit is ``expected_state``."""
        if isinstance(nodes, np.ndarray):
            node_array = nodes.astype(np.int64, copy=False)
        else:
            node_array = np.asarray(list(nodes), dtype=np.int64)
        if node_array.size == 0:
            return node_array
        node_array = np.unique(node_array)
        node_array = node_array[
            (node_array >= 0) & (node_array < self._in_set.shape[0])
        ]
        if node_array.size == 0:
            return node_array
        return node_array[self._in_set[node_array] == expected_state]

    def _members_bincount(self, set_ids: np.ndarray) -> np.ndarray:
        """Histogram of the member nodes of the given RR sets."""
        offsets, nodes = self._collection.flat()
        starts = offsets[set_ids]
        degrees = offsets[set_ids + 1] - starts
        members = nodes[flat_slice_indices(starts, degrees)]
        return np.bincount(members, minlength=self._marginal.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CoverageCounter sets={self._num_synced} "
            f"covered={self._num_covered} |S|={int(self._in_set.sum())}>"
        )
