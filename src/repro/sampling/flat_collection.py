"""Flat, array-backed RR-set collections with vectorized coverage queries.

:class:`FlatRRCollection` is the production counterpart of
:class:`repro.sampling.rr_collection.RRCollection`.  It answers the same
two questions — ``CovR(S)`` and the marginal ``CovR(u | S)`` — but stores
the batch as flat int64 arrays:

* ``(offsets, nodes)``: CSR over RR-set ids (set ``i`` is
  ``nodes[offsets[i]:offsets[i+1]]``), exactly the layout produced by
  :func:`repro.sampling.engine.generate_rr_batch`.  Node entries are
  stored as ``uint32`` whenever the node-id universe fits (``n < 2**32``,
  which is every realistic graph), halving the collection's member-storage
  footprint; offsets stay ``int64`` (total member counts can exceed 32
  bits).  The dtype is stable across ``extend`` / ``extend_generate`` and
  the parallel pool's merge path, and transparently upcasts to ``int64``
  should the universe ever outgrow ``uint32`` (the overflow guard);
* an inverted CSR index ``node -> rr_ids``, so coverage queries are array
  gathers plus boolean-mask arithmetic instead of Python ``dict``/``set``
  traversals.

``extend`` is O(1) amortized: appended batches are buffered and folded into
the flat storage lazily on the next query.  The inverted index is
*extend-aware*: once built, appending ``m`` sets costs one ``argsort`` of
the appended portion plus a linear append-merge into the existing CSR —
the index over the original sets is never recomputed.  That is what makes
sample reuse across refinement rounds (see
:class:`repro.sampling.coverage.CoverageCounter` and the ``sample_reuse``
knob of HATP/HNTP/ADDATP) cheap: ``extend_generate`` grows a live
collection by exactly the ``θ_i − θ_{i−1}`` new sets of a round, through
the parallel pool when one is supplied.

**Out-of-core storage.**  With ``storage="disk"`` (or
``REPRO_RR_STORAGE=disk``) the flat arrays and the inverted index live in
mmap'd files that grow in fixed-size chunks inside a pid-tagged spill
directory (:mod:`repro.sampling.spill`; janitor-cleaned like shared-memory
segments), so θ in the hundreds of millions of members no longer has to
fit in RAM.  The inverted index is rebuilt chunk-at-a-time in node bands —
each band is the *global* stable sort restricted to its node range, so
every query answers bit-for-bit identically to the in-RAM path
(differential-tested in ``tests/sampling/test_disk_collection.py``).
"""

from __future__ import annotations

import os
import shutil
import weakref
from typing import Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.engine import RRBatch, flat_slice_indices, generate_rr_batch
from repro.sampling.spill import DEFAULT_CHUNK_BYTES, SpillArray
from repro.utils.env import read_env_choice
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState

#: Storage backends a collection can use.
STORAGE_CHOICES = ("ram", "disk")


def resolve_rr_storage(storage: Optional[str] = None) -> str:
    """Resolve the RR-collection storage backend.

    Explicit argument first, then the ``REPRO_RR_STORAGE`` environment
    variable, defaulting to ``"ram"``.
    """
    if storage is not None:
        if storage not in STORAGE_CHOICES:
            raise ValidationError(
                f"storage must be one of {', '.join(STORAGE_CHOICES)}, "
                f"got {storage!r}"
            )
        return storage
    return read_env_choice("REPRO_RR_STORAGE", STORAGE_CHOICES) or "ram"


def _cleanup_spill_dirs(paths: List[str]) -> None:
    """Finalizer for disk-backed collections (must not capture ``self``)."""
    for path in list(paths):
        shutil.rmtree(path, ignore_errors=True)
    paths.clear()


class FlatRRCollection:
    """A batch of RR sets stored as flat arrays with a CSR inverted index.

    Parameters
    ----------
    batch:
        The RR sets as an :class:`~repro.sampling.engine.RRBatch`.
    storage:
        ``"ram"`` (historical in-memory arrays), ``"disk"`` (mmap'd spill
        files, see the module docstring), or ``None`` to consult
        ``REPRO_RR_STORAGE`` and default to RAM.
    chunk_bytes:
        Growth increment of the spill files and the working-set bound of
        the chunked index rebuild (disk mode only).
    """

    __slots__ = (
        "_offsets",
        "_nodes",
        "_num_active_nodes",
        "_n",
        "_pending",
        "_inv_offsets",
        "_inv_rr_ids",
        "_inv_synced_sets",
        "_storage",
        "_chunk_bytes",
        "_spill_dirs",
        "_spill_offsets",
        "_spill_nodes",
        "_spill_inv",
        "_finalizer",
        "__weakref__",
    )

    def __init__(
        self,
        batch: RRBatch,
        storage: Optional[str] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> None:
        if batch.num_active_nodes < 0:
            raise ValidationError("num_active_nodes must be >= 0")
        self._num_active_nodes = int(batch.num_active_nodes)
        self._n = int(batch.n)
        self._storage = resolve_rr_storage(storage)
        self._chunk_bytes = int(chunk_bytes)
        self._pending: List[RRBatch] = []
        self._inv_offsets: Optional[np.ndarray] = None
        self._inv_rr_ids: Optional[np.ndarray] = None
        self._inv_synced_sets = 0
        self._spill_dirs: List[str] = []
        self._spill_offsets: Optional[SpillArray] = None
        self._spill_nodes: Optional[SpillArray] = None
        self._spill_inv: Optional[SpillArray] = None
        self._finalizer = None
        node_dtype = _node_storage_dtype(self._n)
        if self._storage == "disk":
            # Deferred: importing repro.parallel at module scope would be
            # circular (same pattern as _dispatch_generate).
            from repro.parallel import janitor

            spill_dir = janitor.tagged_spill_dir()
            self._spill_dirs.append(spill_dir)
            janitor.register_spill_dirs(self._spill_dirs)
            self._finalizer = weakref.finalize(
                self, _cleanup_spill_dirs, self._spill_dirs
            )
            self._spill_offsets = SpillArray(
                os.path.join(spill_dir, "offsets.bin"), np.int64, self._chunk_bytes
            )
            self._spill_nodes = SpillArray(
                os.path.join(spill_dir, "nodes.bin"), node_dtype, self._chunk_bytes
            )
            self._spill_inv = SpillArray(
                os.path.join(spill_dir, "inv_rr_ids.bin"), np.int64, self._chunk_bytes
            )
            self._spill_offsets.append(np.asarray(batch.offsets, dtype=np.int64))
            self._spill_nodes.append(np.asarray(batch.nodes))
            self._refresh_views()
        else:
            self._offsets = np.asarray(batch.offsets, dtype=np.int64)
            self._nodes = np.asarray(batch.nodes).astype(node_dtype, copy=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        graph: ProbabilisticGraph | ResidualGraph,
        count: int,
        random_state: RandomState = None,
        backend: Optional[str] = None,
        n_jobs: Optional[int] = None,
        pool: Optional["SamplingPool"] = None,
        storage: Optional[str] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> "FlatRRCollection":
        """Generate ``count`` RR sets on ``graph`` with the batched engine.

        ``pool`` routes generation through a persistent
        :class:`~repro.parallel.pool.SamplingPool`; ``n_jobs`` (or the
        ``REPRO_JOBS`` environment variable when ``n_jobs`` is ``None``)
        runs a one-shot sharded generation instead.  Both paths produce
        output that is bit-for-bit independent of the worker count; when
        neither is requested the historical single-batch engine runs
        unchanged.  ``storage`` picks the backing store (RAM or disk
        spill); the sampled sets are identical either way.
        """
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return cls(
            _dispatch_generate(view, count, random_state, backend, n_jobs, pool),
            storage=storage,
            chunk_bytes=chunk_bytes,
        )

    @classmethod
    def from_rr_sets(
        cls,
        rr_sets: Sequence[Iterable[int]],
        num_active_nodes: int,
        n: Optional[int] = None,
        storage: Optional[str] = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    ) -> "FlatRRCollection":
        """Build a collection from explicit RR sets (tests, hand-built cases)."""
        return cls(
            _batch_from_sets(rr_sets, num_active_nodes, n),
            storage=storage,
            chunk_bytes=chunk_bytes,
        )

    def extend(self, rr_sets: Union[RRBatch, Iterable[Iterable[int]]]) -> None:
        """Append RR sets (an ``RRBatch`` or explicit sets); index merged lazily."""
        if isinstance(rr_sets, RRBatch):
            batch = rr_sets
        else:
            batch = _batch_from_sets(list(rr_sets), self._num_active_nodes, self._n)
        if batch.n > self._n:
            self._n = int(batch.n)
        self._pending.append(batch)

    def extend_generate(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        count: int,
        random_state: RandomState = None,
        backend: Optional[str] = None,
        n_jobs: Optional[int] = None,
        pool: Optional["SamplingPool"] = None,
    ) -> None:
        """Generate ``count`` more RR sets on ``graph`` and append them.

        The incremental twin of :meth:`generate`: a refinement round that
        needs ``θ_i`` sets but already holds ``θ_{i−1}`` calls this with
        ``count = θ_i − θ_{i−1}`` instead of regenerating from scratch.
        The extension must be sampled on the *same* residual state as the
        existing sets (checked through ``num_active_nodes``) — mixing
        scaling factors would silently bias the RIS estimator.  ``pool`` /
        ``n_jobs`` route the new batch through the parallel subsystem
        exactly as in :meth:`generate`; the extension is sharded as a
        stand-alone batch of ``count`` sets (see ``docs/parallelism.md``).
        """
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        batch = _dispatch_generate(view, count, random_state, backend, n_jobs, pool)
        if batch.num_active_nodes != self._num_active_nodes:
            raise ValidationError(
                "cannot extend a collection with sets sampled on a different "
                f"residual state (num_active_nodes {batch.num_active_nodes} "
                f"!= {self._num_active_nodes})"
            )
        self.extend(batch)

    def _refresh_views(self) -> None:
        """Point ``_offsets``/``_nodes`` at the current spill prefixes."""
        self._offsets = self._spill_offsets.view()
        self._nodes = self._spill_nodes.view()

    def _consolidate(self) -> None:
        # The node dtype follows the (possibly grown) universe: downsized
        # storage upcasts to int64 if `extend` ever pushed `n` past the
        # uint32 range — the overflow guard of the compact representation.
        dtype = _node_storage_dtype(self._n)
        if self._storage == "disk":
            self._consolidate_disk(dtype)
            return
        if self._nodes.dtype != dtype:
            self._nodes = self._nodes.astype(dtype)
        if not self._pending:
            return
        offsets_parts = [self._offsets]
        nodes_parts = [self._nodes]
        last_offset = int(self._offsets[-1])
        for batch in self._pending:
            offsets_parts.append(last_offset + batch.offsets[1:])
            nodes_parts.append(np.asarray(batch.nodes).astype(dtype, copy=False))
            last_offset += int(batch.offsets[-1])
        self._offsets = np.concatenate(offsets_parts)
        self._nodes = np.concatenate(nodes_parts)
        self._pending = []

    def _consolidate_disk(self, dtype: np.dtype) -> None:
        """Fold pending batches into the spill files and drop dirty pages."""
        if self._spill_nodes.dtype != dtype:
            self._upcast_spill_nodes(dtype)
        if not self._pending:
            return
        last_offset = int(self._spill_offsets.view()[-1])
        for batch in self._pending:
            self._spill_offsets.append(
                last_offset + np.asarray(batch.offsets[1:], dtype=np.int64)
            )
            self._spill_nodes.append(np.asarray(batch.nodes))
            last_offset += int(batch.offsets[-1])
        self._pending = []
        # Written data is durable on disk; evict it from this process.
        self._spill_offsets.release()
        self._spill_nodes.release()
        self._refresh_views()

    def _upcast_spill_nodes(self, dtype: np.dtype) -> None:
        """Stream-convert the spilled member array to a wider dtype."""
        old = self._spill_nodes
        replacement = SpillArray(
            os.path.join(self._spill_dirs[0], f"nodes-{dtype.char}.bin"),
            dtype,
            self._chunk_bytes,
        )
        chunk = max(1, self._chunk_bytes // dtype.itemsize)
        view = old.view()
        for start in range(0, view.shape[0], chunk):
            replacement.append(view[start : start + chunk].astype(dtype))
        old.close()
        self._spill_nodes = replacement
        self._refresh_views()

    def _index(self) -> tuple:
        """The inverted CSR index ``node -> rr_ids`` (built/merged on demand)."""
        self._consolidate()
        num_sets = int(self._offsets.shape[0] - 1)
        if self._storage == "disk":
            if self._inv_offsets is None or self._inv_synced_sets < num_sets:
                self._build_index_disk(num_sets)
            return self._inv_offsets, self._inv_rr_ids
        if self._inv_offsets is None:
            counts = np.bincount(self._nodes, minlength=self._n)
            self._inv_offsets = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=self._inv_offsets[1:])
            order = np.argsort(self._nodes, kind="stable")
            rr_of_position = np.repeat(
                np.arange(num_sets, dtype=np.int64), np.diff(self._offsets)
            )
            self._inv_rr_ids = rr_of_position[order]
            self._inv_synced_sets = num_sets
        elif self._inv_synced_sets < num_sets:
            self._merge_index(num_sets)
        return self._inv_offsets, self._inv_rr_ids

    def _merge_index(self, num_sets: int) -> None:
        """Append-merge the sets added since the last index build into the CSR.

        Only the appended suffix is sorted; the existing per-node runs are
        copied to their shifted positions with two bulk scatters.  Within a
        node's run rr ids stay ascending (appended ids are all larger), so
        :meth:`sets_containing` keeps returning sorted ids.
        """
        n = self._n
        synced = self._inv_synced_sets
        old_counts = np.diff(self._inv_offsets)
        if old_counts.shape[0] < n:
            old_counts = np.concatenate(
                [old_counts, np.zeros(n - old_counts.shape[0], dtype=np.int64)]
            )
        start = int(self._offsets[synced])
        appended_nodes = self._nodes[start:]
        appended_counts = np.bincount(appended_nodes, minlength=n)
        order = np.argsort(appended_nodes, kind="stable")
        appended_rr = np.repeat(
            np.arange(synced, num_sets, dtype=np.int64),
            np.diff(self._offsets[synced:]),
        )
        new_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(old_counts + appended_counts, out=new_offsets[1:])
        merged = np.empty(int(new_offsets[-1]), dtype=np.int64)
        merged[flat_slice_indices(new_offsets[:-1], old_counts)] = self._inv_rr_ids
        merged[
            flat_slice_indices(new_offsets[:-1] + old_counts, appended_counts)
        ] = appended_rr[order]
        self._inv_offsets = new_offsets
        self._inv_rr_ids = merged
        self._inv_synced_sets = num_sets

    def _rr_of_positions(self, start: int, end: int) -> np.ndarray:
        """RR-set id of every member position in ``[start, end)``."""
        offsets = self._offsets
        first = int(np.searchsorted(offsets, start, side="right")) - 1
        last = int(np.searchsorted(offsets, end, side="left"))
        sub = np.clip(
            np.asarray(offsets[first : last + 1], dtype=np.int64), start, end
        )
        return np.repeat(np.arange(first, last, dtype=np.int64), np.diff(sub))

    def _build_index_disk(self, num_sets: int) -> None:
        """Chunked rebuild of the inverted index into the spill file.

        Equivalent to the RAM path's single stable ``argsort`` — the index
        is produced in *node bands*, and within a band the members are
        collected in position order then stably sorted by node, which is
        exactly the global stable sort restricted to that band.  Peak
        working set is one band (≈ ``chunk_bytes``) plus the per-node
        offset array, independent of the collection's total size.
        """
        n = self._n
        nodes_view = self._nodes
        total = int(nodes_view.shape[0])
        chunk_items = max(1, self._chunk_bytes // 8)
        # Pass 1: per-node counts -> inverted offsets (RAM, n + 1 int64).
        counts = np.zeros(n, dtype=np.int64)
        for start in range(0, total, chunk_items):
            chunk = np.asarray(
                nodes_view[start : start + chunk_items], dtype=np.int64
            )
            counts += np.bincount(chunk, minlength=n)
        inv_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=inv_offsets[1:])
        # Pass 2: fill the index band by band, appending sequentially.
        inv = self._spill_inv
        inv.clear()
        lo = 0
        while lo < n:
            hi = int(
                np.searchsorted(
                    inv_offsets, inv_offsets[lo] + chunk_items, side="right"
                )
            ) - 1
            if hi <= lo:
                hi = lo + 1  # one node with > chunk_items members
            band_nodes: List[np.ndarray] = []
            band_rr: List[np.ndarray] = []
            for start in range(0, total, chunk_items):
                end = min(start + chunk_items, total)
                chunk = np.asarray(nodes_view[start:end], dtype=np.int64)
                mask = (chunk >= lo) & (chunk < hi)
                if not mask.any():
                    continue
                band_nodes.append(chunk[mask])
                band_rr.append(self._rr_of_positions(start, end)[mask])
            if band_nodes:
                merged_nodes = np.concatenate(band_nodes)
                merged_rr = np.concatenate(band_rr)
                order = np.argsort(merged_nodes, kind="stable")
                inv.append(merged_rr[order])
            lo = hi
        inv.release()
        self._inv_offsets = inv_offsets
        self._inv_rr_ids = inv.view()
        self._inv_synced_sets = num_sets

    # ------------------------------------------------------------------ #
    # storage lifecycle
    # ------------------------------------------------------------------ #

    @property
    def storage(self) -> str:
        """The backing store: ``"ram"`` or ``"disk"``."""
        return self._storage

    @property
    def spill_path(self) -> Optional[str]:
        """The collection's spill directory (``None`` in RAM mode)."""
        return self._spill_dirs[0] if self._spill_dirs else None

    def release(self) -> None:
        """Drop resident spill pages from RSS (no-op in RAM mode).

        Data stays on disk; subsequent queries page-fault it back.
        """
        for spill in (self._spill_offsets, self._spill_nodes, self._spill_inv):
            if spill is not None:
                spill.release()

    def close(self) -> None:
        """Delete the spill directory (no-op in RAM mode; idempotent)."""
        for spill in (self._spill_offsets, self._spill_nodes, self._spill_inv):
            if spill is not None:
                spill.close(unlink=False)
        if self._finalizer is not None:
            self._finalizer()  # rmtree + empties the janitor-registered list
        if self._storage == "disk":
            self._offsets = np.zeros(1, dtype=np.int64)
            self._nodes = np.empty(0, dtype=_node_storage_dtype(self._n))
            self._inv_offsets = None
            self._inv_rr_ids = None
            self._inv_synced_sets = 0

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_sets(self) -> int:
        """θ — the number of RR sets in the collection."""
        self._consolidate()
        return int(self._offsets.shape[0] - 1)

    @property
    def num_active_nodes(self) -> int:
        """``n_i`` of the residual graph the sets were sampled on."""
        return self._num_active_nodes

    @property
    def n(self) -> int:
        """Node-id universe of the base graph the sets were sampled on."""
        return self._n

    def flat(self) -> tuple:
        """The consolidated flat ``(offsets, nodes)`` arrays (do not mutate).

        This is the raw CSR the batch engine produced; stateful consumers
        such as :class:`repro.sampling.coverage.CoverageCounter` read it
        directly for bulk gathers instead of going through per-set views.
        """
        self._consolidate()
        return self._offsets, self._nodes

    @property
    def rr_sets(self) -> List[Set[int]]:
        """The RR sets materialised as Python sets (compat; costs O(total size))."""
        self._consolidate()
        offsets = self._offsets
        node_list = self._nodes.tolist()
        return [
            set(node_list[offsets[i] : offsets[i + 1]]) for i in range(self.num_sets)
        ]

    def set_at(self, index: int) -> np.ndarray:
        """Members of RR set ``index`` (read-only view)."""
        self._consolidate()
        return self._nodes[self._offsets[index] : self._offsets[index + 1]]

    def sets_containing(self, node: int) -> np.ndarray:
        """Ids of the RR sets that contain ``node`` (int64 array)."""
        node = int(node)
        if node < 0 or node >= self._n:
            return np.zeros(0, dtype=np.int64)
        inv_offsets, inv_rr_ids = self._index()
        return inv_rr_ids[inv_offsets[node] : inv_offsets[node + 1]]

    def total_size(self) -> int:
        """Sum of RR-set sizes (a proxy for generation cost)."""
        self._consolidate()
        return int(self._nodes.shape[0])

    def sizes(self) -> np.ndarray:
        """Array of RR-set sizes."""
        self._consolidate()
        return np.diff(self._offsets)

    def nodes_appearing(self) -> np.ndarray:
        """Node ids appearing in at least one RR set (sorted)."""
        inv_offsets, _ = self._index()
        return np.nonzero(np.diff(inv_offsets) > 0)[0]

    # ------------------------------------------------------------------ #
    # coverage queries
    # ------------------------------------------------------------------ #

    def covering_ids(self, nodes: Iterable[int]) -> np.ndarray:
        """Concatenated (non-unique) rr ids of the sets touched by ``nodes``.

        One vectorized gather over the inverted CSR: the per-node slices are
        addressed with a single repeat/arange index instead of a Python
        slice per node.  Out-of-range ids are ignored.
        """
        node_array = _as_node_array(nodes)
        if node_array.size == 0:
            return np.zeros(0, dtype=np.int64)
        inv_offsets, inv_rr_ids = self._index()
        node_array = node_array[(node_array >= 0) & (node_array < self._n)]
        starts = inv_offsets[node_array]
        degrees = inv_offsets[node_array + 1] - starts
        if int(degrees.sum()) == 0:
            return np.zeros(0, dtype=np.int64)
        return inv_rr_ids[flat_slice_indices(starts, degrees)]

    def covered_mask(self, nodes: Iterable[int]) -> np.ndarray:
        """Boolean array over RR-set ids marking the sets intersected by ``nodes``."""
        mask = np.zeros(self.num_sets, dtype=bool)
        ids = self.covering_ids(nodes)
        if ids.size:
            mask[ids] = True
        return mask

    def coverage(self, nodes: Iterable[int]) -> int:
        """``CovR(S)``: number of RR sets intersecting ``nodes``."""
        ids = self.covering_ids(nodes)
        if ids.size == 0:
            # Empty conditioning set (or no touched sets): no full-size
            # bool allocation, no index build on a fresh collection.
            return 0
        mask = np.zeros(self.num_sets, dtype=bool)
        mask[ids] = True
        return int(np.count_nonzero(mask))

    def batch_coverage(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """``CovR(S_j)`` for many seed sets in one fused index pass.

        The batched twin of :meth:`coverage`, built for the serving
        layer's request coalescer: all member nodes are gathered through
        the inverted CSR with a single repeat/arange index, covered RR-set
        ids are tagged with their owning query, and one ``np.unique`` over
        the tagged ids yields every query's coverage simultaneously —
        agreeing integer-for-integer with per-set :meth:`coverage` calls.
        """
        counts = np.zeros(len(seed_sets), dtype=np.int64)
        if len(seed_sets) == 0 or self.num_sets == 0:
            return counts
        node_chunks = [_as_node_array(nodes) for nodes in seed_sets]
        lengths = np.asarray([chunk.size for chunk in node_chunks], dtype=np.int64)
        if int(lengths.sum()) == 0:
            return counts
        nodes = np.concatenate([c for c in node_chunks if c.size])
        owners = np.repeat(np.arange(len(seed_sets), dtype=np.int64), lengths)
        keep = (nodes >= 0) & (nodes < self._n)
        nodes, owners = nodes[keep], owners[keep]
        if nodes.size == 0:
            return counts
        inv_offsets, inv_rr_ids = self._index()
        starts = inv_offsets[nodes]
        degrees = inv_offsets[nodes + 1] - starts
        if int(degrees.sum()) == 0:
            return counts
        covered = inv_rr_ids[flat_slice_indices(starts, degrees)].astype(np.int64)
        tagged = np.repeat(owners, degrees) * self.num_sets + covered
        unique_owner_sets = np.unique(tagged) // self.num_sets
        counts += np.bincount(unique_owner_sets, minlength=len(seed_sets))
        return counts

    def estimate_spreads(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """``Ê[I(S_j)]`` for many seed sets via one :meth:`batch_coverage` call."""
        if self.num_sets == 0:
            return np.zeros(len(seed_sets), dtype=np.float64)
        return (
            self.batch_coverage(seed_sets) * self._num_active_nodes / self.num_sets
        )

    def marginal_coverage(self, node: int, conditioning_set: Iterable[int]) -> int:
        """``CovR(u | S)``: RR sets containing ``u`` but disjoint from ``S``.

        ``conditioning_set`` may be any iterable of node ids; ndarray inputs
        take a pure-array path with no per-call Python-set conversion.
        """
        node = int(node)
        ids = self.sets_containing(node)
        if ids.size == 0:
            return 0
        if isinstance(conditioning_set, np.ndarray):
            conditioning = conditioning_set[conditioning_set != node]
        else:
            conditioning_py = {int(v) for v in conditioning_set}
            conditioning_py.discard(node)
            conditioning = conditioning_py
        if len(conditioning) == 0:
            return int(ids.size)
        mask = self.covered_mask(conditioning)
        return int(ids.size - np.count_nonzero(mask[ids]))

    # ------------------------------------------------------------------ #
    # spread estimation
    # ------------------------------------------------------------------ #

    def estimate_spread(self, nodes: Iterable[int]) -> float:
        """``Ê[I(S)] = CovR(S) * n_i / θ`` (0 when the collection is empty)."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) * self._num_active_nodes / self.num_sets

    def estimate_marginal_spread(self, node: int, conditioning_set: Iterable[int]) -> float:
        """``Ê[I(u | S)] = CovR(u | S) * n_i / θ``."""
        if self.num_sets == 0:
            return 0.0
        return (
            self.marginal_coverage(node, conditioning_set)
            * self._num_active_nodes
            / self.num_sets
        )

    def estimate_fraction(self, nodes: Iterable[int]) -> float:
        """Covered fraction ``CovR(S)/θ`` — the ``[0, 1]`` random variable of Lemma 7."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) / self.num_sets

    def __len__(self) -> int:
        return self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FlatRRCollection sets={self.num_sets} n_i={self._num_active_nodes}>"


def _node_storage_dtype(n: int) -> np.dtype:
    """Member-storage dtype for a node-id universe of size ``n``.

    ``uint32`` halves the flat member arrays whenever every node id fits;
    the int64 fallback is the overflow guard for (hypothetical) universes
    beyond ``2**32`` ids.
    """
    return np.dtype(np.uint32) if 0 <= n < 2**32 else np.dtype(np.int64)


def _as_node_array(nodes: Iterable[int]) -> np.ndarray:
    """Normalise a conditioning set to an int64 array (no-copy for ndarrays)."""
    if isinstance(nodes, np.ndarray):
        return nodes.astype(np.int64, copy=False)
    return np.asarray(list(nodes), dtype=np.int64)


def _dispatch_generate(
    view: ResidualGraph,
    count: int,
    random_state: RandomState,
    backend: Optional[str],
    n_jobs: Optional[int],
    pool: Optional["SamplingPool"],
) -> RRBatch:
    """Route one batch generation through the pool / sharded / plain engine."""
    from repro.parallel.pool import parallel_generate_rr_batch, resolve_jobs

    if pool is not None:
        return pool.generate(view, count, random_state, backend=backend)
    jobs = resolve_jobs(n_jobs)
    if jobs is not None:
        return parallel_generate_rr_batch(
            view, count, random_state, backend=backend, n_jobs=jobs
        )
    return generate_rr_batch(view, count, random_state, backend=backend)


def _batch_from_sets(
    rr_sets: Sequence[Iterable[int]],
    num_active_nodes: int,
    n: Optional[int] = None,
) -> RRBatch:
    """Flatten explicit RR sets into an :class:`RRBatch`."""
    materialized = [sorted({int(v) for v in rr}) for rr in rr_sets]
    sizes = np.asarray([len(rr) for rr in materialized], dtype=np.int64)
    offsets = np.zeros(len(materialized) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = [node for rr in materialized for node in rr]
    nodes = np.asarray(flat, dtype=np.int64)
    if nodes.size and nodes.min() < 0:
        raise ValidationError("RR sets contain negative node ids")
    universe = int(nodes.max()) + 1 if nodes.size else 0
    if n is not None:
        universe = max(universe, int(n))
    return RRBatch(
        offsets=offsets,
        nodes=nodes,
        num_active_nodes=int(num_active_nodes),
        n=universe,
    )
