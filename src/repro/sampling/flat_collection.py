"""Flat, array-backed RR-set collections with vectorized coverage queries.

:class:`FlatRRCollection` is the production counterpart of
:class:`repro.sampling.rr_collection.RRCollection`.  It answers the same
two questions — ``CovR(S)`` and the marginal ``CovR(u | S)`` — but stores
the batch as flat int64 arrays:

* ``(offsets, nodes)``: CSR over RR-set ids (set ``i`` is
  ``nodes[offsets[i]:offsets[i+1]]``), exactly the layout produced by
  :func:`repro.sampling.engine.generate_rr_batch`.  Node entries are
  stored as ``uint32`` whenever the node-id universe fits (``n < 2**32``,
  which is every realistic graph), halving the collection's member-storage
  footprint; offsets stay ``int64`` (total member counts can exceed 32
  bits).  The dtype is stable across ``extend`` / ``extend_generate`` and
  the parallel pool's merge path, and transparently upcasts to ``int64``
  should the universe ever outgrow ``uint32`` (the overflow guard);
* an inverted CSR index ``node -> rr_ids``, so coverage queries are array
  gathers plus boolean-mask arithmetic instead of Python ``dict``/``set``
  traversals.

``extend`` is O(1) amortized: appended batches are buffered and folded into
the flat storage lazily on the next query.  The inverted index is
*extend-aware*: once built, appending ``m`` sets costs one ``argsort`` of
the appended portion plus a linear append-merge into the existing CSR —
the index over the original sets is never recomputed.  That is what makes
sample reuse across refinement rounds (see
:class:`repro.sampling.coverage.CoverageCounter` and the ``sample_reuse``
knob of HATP/HNTP/ADDATP) cheap: ``extend_generate`` grows a live
collection by exactly the ``θ_i − θ_{i−1}`` new sets of a round, through
the parallel pool when one is supplied.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Union

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.engine import RRBatch, flat_slice_indices, generate_rr_batch
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState


class FlatRRCollection:
    """A batch of RR sets stored as flat arrays with a CSR inverted index.

    Parameters
    ----------
    batch:
        The RR sets as an :class:`~repro.sampling.engine.RRBatch`.
    """

    __slots__ = (
        "_offsets",
        "_nodes",
        "_num_active_nodes",
        "_n",
        "_pending",
        "_inv_offsets",
        "_inv_rr_ids",
        "_inv_synced_sets",
    )

    def __init__(self, batch: RRBatch) -> None:
        if batch.num_active_nodes < 0:
            raise ValidationError("num_active_nodes must be >= 0")
        self._offsets = np.asarray(batch.offsets, dtype=np.int64)
        self._num_active_nodes = int(batch.num_active_nodes)
        self._n = int(batch.n)
        self._nodes = np.asarray(batch.nodes).astype(
            _node_storage_dtype(self._n), copy=False
        )
        self._pending: List[RRBatch] = []
        self._inv_offsets: Optional[np.ndarray] = None
        self._inv_rr_ids: Optional[np.ndarray] = None
        self._inv_synced_sets = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def generate(
        cls,
        graph: ProbabilisticGraph | ResidualGraph,
        count: int,
        random_state: RandomState = None,
        backend: str = "vectorized",
        n_jobs: Optional[int] = None,
        pool: Optional["SamplingPool"] = None,
    ) -> "FlatRRCollection":
        """Generate ``count`` RR sets on ``graph`` with the batched engine.

        ``pool`` routes generation through a persistent
        :class:`~repro.parallel.pool.SamplingPool`; ``n_jobs`` (or the
        ``REPRO_JOBS`` environment variable when ``n_jobs`` is ``None``)
        runs a one-shot sharded generation instead.  Both paths produce
        output that is bit-for-bit independent of the worker count; when
        neither is requested the historical single-batch engine runs
        unchanged.
        """
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return cls(
            _dispatch_generate(view, count, random_state, backend, n_jobs, pool)
        )

    @classmethod
    def from_rr_sets(
        cls,
        rr_sets: Sequence[Iterable[int]],
        num_active_nodes: int,
        n: Optional[int] = None,
    ) -> "FlatRRCollection":
        """Build a collection from explicit RR sets (tests, hand-built cases)."""
        return cls(_batch_from_sets(rr_sets, num_active_nodes, n))

    def extend(self, rr_sets: Union[RRBatch, Iterable[Iterable[int]]]) -> None:
        """Append RR sets (an ``RRBatch`` or explicit sets); index merged lazily."""
        if isinstance(rr_sets, RRBatch):
            batch = rr_sets
        else:
            batch = _batch_from_sets(list(rr_sets), self._num_active_nodes, self._n)
        if batch.n > self._n:
            self._n = int(batch.n)
        self._pending.append(batch)

    def extend_generate(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        count: int,
        random_state: RandomState = None,
        backend: str = "vectorized",
        n_jobs: Optional[int] = None,
        pool: Optional["SamplingPool"] = None,
    ) -> None:
        """Generate ``count`` more RR sets on ``graph`` and append them.

        The incremental twin of :meth:`generate`: a refinement round that
        needs ``θ_i`` sets but already holds ``θ_{i−1}`` calls this with
        ``count = θ_i − θ_{i−1}`` instead of regenerating from scratch.
        The extension must be sampled on the *same* residual state as the
        existing sets (checked through ``num_active_nodes``) — mixing
        scaling factors would silently bias the RIS estimator.  ``pool`` /
        ``n_jobs`` route the new batch through the parallel subsystem
        exactly as in :meth:`generate`; the extension is sharded as a
        stand-alone batch of ``count`` sets (see ``docs/parallelism.md``).
        """
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        if count == 0:
            return
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        batch = _dispatch_generate(view, count, random_state, backend, n_jobs, pool)
        if batch.num_active_nodes != self._num_active_nodes:
            raise ValidationError(
                "cannot extend a collection with sets sampled on a different "
                f"residual state (num_active_nodes {batch.num_active_nodes} "
                f"!= {self._num_active_nodes})"
            )
        self.extend(batch)

    def _consolidate(self) -> None:
        # The node dtype follows the (possibly grown) universe: downsized
        # storage upcasts to int64 if `extend` ever pushed `n` past the
        # uint32 range — the overflow guard of the compact representation.
        dtype = _node_storage_dtype(self._n)
        if self._nodes.dtype != dtype:
            self._nodes = self._nodes.astype(dtype)
        if not self._pending:
            return
        offsets_parts = [self._offsets]
        nodes_parts = [self._nodes]
        last_offset = int(self._offsets[-1])
        for batch in self._pending:
            offsets_parts.append(last_offset + batch.offsets[1:])
            nodes_parts.append(np.asarray(batch.nodes).astype(dtype, copy=False))
            last_offset += int(batch.offsets[-1])
        self._offsets = np.concatenate(offsets_parts)
        self._nodes = np.concatenate(nodes_parts)
        self._pending = []

    def _index(self) -> tuple:
        """The inverted CSR index ``node -> rr_ids`` (built/merged on demand)."""
        self._consolidate()
        num_sets = int(self._offsets.shape[0] - 1)
        if self._inv_offsets is None:
            counts = np.bincount(self._nodes, minlength=self._n)
            self._inv_offsets = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=self._inv_offsets[1:])
            order = np.argsort(self._nodes, kind="stable")
            rr_of_position = np.repeat(
                np.arange(num_sets, dtype=np.int64), np.diff(self._offsets)
            )
            self._inv_rr_ids = rr_of_position[order]
            self._inv_synced_sets = num_sets
        elif self._inv_synced_sets < num_sets:
            self._merge_index(num_sets)
        return self._inv_offsets, self._inv_rr_ids

    def _merge_index(self, num_sets: int) -> None:
        """Append-merge the sets added since the last index build into the CSR.

        Only the appended suffix is sorted; the existing per-node runs are
        copied to their shifted positions with two bulk scatters.  Within a
        node's run rr ids stay ascending (appended ids are all larger), so
        :meth:`sets_containing` keeps returning sorted ids.
        """
        n = self._n
        synced = self._inv_synced_sets
        old_counts = np.diff(self._inv_offsets)
        if old_counts.shape[0] < n:
            old_counts = np.concatenate(
                [old_counts, np.zeros(n - old_counts.shape[0], dtype=np.int64)]
            )
        start = int(self._offsets[synced])
        appended_nodes = self._nodes[start:]
        appended_counts = np.bincount(appended_nodes, minlength=n)
        order = np.argsort(appended_nodes, kind="stable")
        appended_rr = np.repeat(
            np.arange(synced, num_sets, dtype=np.int64),
            np.diff(self._offsets[synced:]),
        )
        new_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(old_counts + appended_counts, out=new_offsets[1:])
        merged = np.empty(int(new_offsets[-1]), dtype=np.int64)
        merged[flat_slice_indices(new_offsets[:-1], old_counts)] = self._inv_rr_ids
        merged[
            flat_slice_indices(new_offsets[:-1] + old_counts, appended_counts)
        ] = appended_rr[order]
        self._inv_offsets = new_offsets
        self._inv_rr_ids = merged
        self._inv_synced_sets = num_sets

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #

    @property
    def num_sets(self) -> int:
        """θ — the number of RR sets in the collection."""
        self._consolidate()
        return int(self._offsets.shape[0] - 1)

    @property
    def num_active_nodes(self) -> int:
        """``n_i`` of the residual graph the sets were sampled on."""
        return self._num_active_nodes

    @property
    def n(self) -> int:
        """Node-id universe of the base graph the sets were sampled on."""
        return self._n

    def flat(self) -> tuple:
        """The consolidated flat ``(offsets, nodes)`` arrays (do not mutate).

        This is the raw CSR the batch engine produced; stateful consumers
        such as :class:`repro.sampling.coverage.CoverageCounter` read it
        directly for bulk gathers instead of going through per-set views.
        """
        self._consolidate()
        return self._offsets, self._nodes

    @property
    def rr_sets(self) -> List[Set[int]]:
        """The RR sets materialised as Python sets (compat; costs O(total size))."""
        self._consolidate()
        offsets = self._offsets
        node_list = self._nodes.tolist()
        return [
            set(node_list[offsets[i] : offsets[i + 1]]) for i in range(self.num_sets)
        ]

    def set_at(self, index: int) -> np.ndarray:
        """Members of RR set ``index`` (read-only view)."""
        self._consolidate()
        return self._nodes[self._offsets[index] : self._offsets[index + 1]]

    def sets_containing(self, node: int) -> np.ndarray:
        """Ids of the RR sets that contain ``node`` (int64 array)."""
        node = int(node)
        if node < 0 or node >= self._n:
            return np.zeros(0, dtype=np.int64)
        inv_offsets, inv_rr_ids = self._index()
        return inv_rr_ids[inv_offsets[node] : inv_offsets[node + 1]]

    def total_size(self) -> int:
        """Sum of RR-set sizes (a proxy for generation cost)."""
        self._consolidate()
        return int(self._nodes.shape[0])

    def sizes(self) -> np.ndarray:
        """Array of RR-set sizes."""
        self._consolidate()
        return np.diff(self._offsets)

    def nodes_appearing(self) -> np.ndarray:
        """Node ids appearing in at least one RR set (sorted)."""
        inv_offsets, _ = self._index()
        return np.nonzero(np.diff(inv_offsets) > 0)[0]

    # ------------------------------------------------------------------ #
    # coverage queries
    # ------------------------------------------------------------------ #

    def covering_ids(self, nodes: Iterable[int]) -> np.ndarray:
        """Concatenated (non-unique) rr ids of the sets touched by ``nodes``.

        One vectorized gather over the inverted CSR: the per-node slices are
        addressed with a single repeat/arange index instead of a Python
        slice per node.  Out-of-range ids are ignored.
        """
        node_array = _as_node_array(nodes)
        if node_array.size == 0:
            return np.zeros(0, dtype=np.int64)
        inv_offsets, inv_rr_ids = self._index()
        node_array = node_array[(node_array >= 0) & (node_array < self._n)]
        starts = inv_offsets[node_array]
        degrees = inv_offsets[node_array + 1] - starts
        if int(degrees.sum()) == 0:
            return np.zeros(0, dtype=np.int64)
        return inv_rr_ids[flat_slice_indices(starts, degrees)]

    def covered_mask(self, nodes: Iterable[int]) -> np.ndarray:
        """Boolean array over RR-set ids marking the sets intersected by ``nodes``."""
        mask = np.zeros(self.num_sets, dtype=bool)
        ids = self.covering_ids(nodes)
        if ids.size:
            mask[ids] = True
        return mask

    def coverage(self, nodes: Iterable[int]) -> int:
        """``CovR(S)``: number of RR sets intersecting ``nodes``."""
        ids = self.covering_ids(nodes)
        if ids.size == 0:
            # Empty conditioning set (or no touched sets): no full-size
            # bool allocation, no index build on a fresh collection.
            return 0
        mask = np.zeros(self.num_sets, dtype=bool)
        mask[ids] = True
        return int(np.count_nonzero(mask))

    def batch_coverage(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """``CovR(S_j)`` for many seed sets in one fused index pass.

        The batched twin of :meth:`coverage`, built for the serving
        layer's request coalescer: all member nodes are gathered through
        the inverted CSR with a single repeat/arange index, covered RR-set
        ids are tagged with their owning query, and one ``np.unique`` over
        the tagged ids yields every query's coverage simultaneously —
        agreeing integer-for-integer with per-set :meth:`coverage` calls.
        """
        counts = np.zeros(len(seed_sets), dtype=np.int64)
        if len(seed_sets) == 0 or self.num_sets == 0:
            return counts
        node_chunks = [_as_node_array(nodes) for nodes in seed_sets]
        lengths = np.asarray([chunk.size for chunk in node_chunks], dtype=np.int64)
        if int(lengths.sum()) == 0:
            return counts
        nodes = np.concatenate([c for c in node_chunks if c.size])
        owners = np.repeat(np.arange(len(seed_sets), dtype=np.int64), lengths)
        keep = (nodes >= 0) & (nodes < self._n)
        nodes, owners = nodes[keep], owners[keep]
        if nodes.size == 0:
            return counts
        inv_offsets, inv_rr_ids = self._index()
        starts = inv_offsets[nodes]
        degrees = inv_offsets[nodes + 1] - starts
        if int(degrees.sum()) == 0:
            return counts
        covered = inv_rr_ids[flat_slice_indices(starts, degrees)].astype(np.int64)
        tagged = np.repeat(owners, degrees) * self.num_sets + covered
        unique_owner_sets = np.unique(tagged) // self.num_sets
        counts += np.bincount(unique_owner_sets, minlength=len(seed_sets))
        return counts

    def estimate_spreads(self, seed_sets: Sequence[Iterable[int]]) -> np.ndarray:
        """``Ê[I(S_j)]`` for many seed sets via one :meth:`batch_coverage` call."""
        if self.num_sets == 0:
            return np.zeros(len(seed_sets), dtype=np.float64)
        return (
            self.batch_coverage(seed_sets) * self._num_active_nodes / self.num_sets
        )

    def marginal_coverage(self, node: int, conditioning_set: Iterable[int]) -> int:
        """``CovR(u | S)``: RR sets containing ``u`` but disjoint from ``S``.

        ``conditioning_set`` may be any iterable of node ids; ndarray inputs
        take a pure-array path with no per-call Python-set conversion.
        """
        node = int(node)
        ids = self.sets_containing(node)
        if ids.size == 0:
            return 0
        if isinstance(conditioning_set, np.ndarray):
            conditioning = conditioning_set[conditioning_set != node]
        else:
            conditioning_py = {int(v) for v in conditioning_set}
            conditioning_py.discard(node)
            conditioning = conditioning_py
        if len(conditioning) == 0:
            return int(ids.size)
        mask = self.covered_mask(conditioning)
        return int(ids.size - np.count_nonzero(mask[ids]))

    # ------------------------------------------------------------------ #
    # spread estimation
    # ------------------------------------------------------------------ #

    def estimate_spread(self, nodes: Iterable[int]) -> float:
        """``Ê[I(S)] = CovR(S) * n_i / θ`` (0 when the collection is empty)."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) * self._num_active_nodes / self.num_sets

    def estimate_marginal_spread(self, node: int, conditioning_set: Iterable[int]) -> float:
        """``Ê[I(u | S)] = CovR(u | S) * n_i / θ``."""
        if self.num_sets == 0:
            return 0.0
        return (
            self.marginal_coverage(node, conditioning_set)
            * self._num_active_nodes
            / self.num_sets
        )

    def estimate_fraction(self, nodes: Iterable[int]) -> float:
        """Covered fraction ``CovR(S)/θ`` — the ``[0, 1]`` random variable of Lemma 7."""
        if self.num_sets == 0:
            return 0.0
        return self.coverage(nodes) / self.num_sets

    def __len__(self) -> int:
        return self.num_sets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FlatRRCollection sets={self.num_sets} n_i={self._num_active_nodes}>"


def _node_storage_dtype(n: int) -> np.dtype:
    """Member-storage dtype for a node-id universe of size ``n``.

    ``uint32`` halves the flat member arrays whenever every node id fits;
    the int64 fallback is the overflow guard for (hypothetical) universes
    beyond ``2**32`` ids.
    """
    return np.dtype(np.uint32) if 0 <= n < 2**32 else np.dtype(np.int64)


def _as_node_array(nodes: Iterable[int]) -> np.ndarray:
    """Normalise a conditioning set to an int64 array (no-copy for ndarrays)."""
    if isinstance(nodes, np.ndarray):
        return nodes.astype(np.int64, copy=False)
    return np.asarray(list(nodes), dtype=np.int64)


def _dispatch_generate(
    view: ResidualGraph,
    count: int,
    random_state: RandomState,
    backend: str,
    n_jobs: Optional[int],
    pool: Optional["SamplingPool"],
) -> RRBatch:
    """Route one batch generation through the pool / sharded / plain engine."""
    from repro.parallel.pool import parallel_generate_rr_batch, resolve_jobs

    if pool is not None:
        return pool.generate(view, count, random_state, backend=backend)
    jobs = resolve_jobs(n_jobs)
    if jobs is not None:
        return parallel_generate_rr_batch(
            view, count, random_state, backend=backend, n_jobs=jobs
        )
    return generate_rr_batch(view, count, random_state, backend=backend)


def _batch_from_sets(
    rr_sets: Sequence[Iterable[int]],
    num_active_nodes: int,
    n: Optional[int] = None,
) -> RRBatch:
    """Flatten explicit RR sets into an :class:`RRBatch`."""
    materialized = [sorted({int(v) for v in rr}) for rr in rr_sets]
    sizes = np.asarray([len(rr) for rr in materialized], dtype=np.int64)
    offsets = np.zeros(len(materialized) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = [node for rr in materialized for node in rr]
    nodes = np.asarray(flat, dtype=np.int64)
    if nodes.size and nodes.min() < 0:
        raise ValidationError("RR sets contain negative node ids")
    universe = int(nodes.max()) + 1 if nodes.size else 0
    if n is not None:
        universe = max(universe, int(n))
    return RRBatch(
        offsets=offsets,
        nodes=nodes,
        num_active_nodes=int(num_active_nodes),
        n=universe,
    )
