"""Higher-level spread / profit estimators built on RR collections.

These are the estimation objects the nonadaptive baselines (NSG, NDG) use:
they fix one batch of RR sets up front and answer every spread or profit
query from that batch, exactly as described in Section VI-A of the paper
("NSG and NDG complete seed selection on one set of RR sets").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.flat_collection import FlatRRCollection
from repro.utils.rng import RandomState


class RISSpreadEstimator:
    """Spread estimator backed by one fixed RR collection.

    Parameters
    ----------
    graph:
        Graph (or residual view) the estimator works on.
    num_samples:
        Number of RR sets to generate up front.
    random_state:
        RNG used for RR-set generation.
    """

    def __init__(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        num_samples: int,
        random_state: RandomState = None,
    ) -> None:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        self._view = view
        self._collection = FlatRRCollection.generate(view, num_samples, random_state)

    @property
    def collection(self) -> FlatRRCollection:
        """The underlying RR collection."""
        return self._collection

    @property
    def num_samples(self) -> int:
        """Number of RR sets backing the estimator."""
        return self._collection.num_sets

    def spread(self, nodes: Iterable[int]) -> float:
        """Estimated ``E[I(S)]``."""
        return self._collection.estimate_spread(nodes)

    def marginal_spread(self, node: int, conditioning_set: Iterable[int]) -> float:
        """Estimated ``E[I(u | S)]``."""
        return self._collection.estimate_marginal_spread(node, conditioning_set)


class RISProfitEstimator(RISSpreadEstimator):
    """Profit estimator: spread estimate minus seeding costs.

    ``costs`` maps node id to seeding cost; nodes absent from the map are
    treated as free (cost 0), which matches the convention that only target
    nodes carry costs.
    """

    def __init__(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        num_samples: int,
        costs: Dict[int, float],
        random_state: RandomState = None,
    ) -> None:
        super().__init__(graph, num_samples, random_state)
        self._costs = dict(costs)

    @property
    def costs(self) -> Dict[int, float]:
        """The node-cost mapping (copy not taken on access; treat as read-only)."""
        return self._costs

    def cost(self, nodes: Iterable[int]) -> float:
        """Total seeding cost ``c(S)``."""
        return sum(self._costs.get(int(v), 0.0) for v in nodes)

    def profit(self, nodes: Iterable[int]) -> float:
        """Estimated profit ``Ê[I(S)] − c(S)``."""
        nodes = [int(v) for v in nodes]
        return self.spread(nodes) - self.cost(nodes)

    def marginal_profit(self, node: int, conditioning_set: Iterable[int]) -> float:
        """Estimated marginal profit of adding ``node`` given ``conditioning_set``."""
        node = int(node)
        return self.marginal_spread(node, conditioning_set) - self._costs.get(node, 0.0)


def choose_sample_size_like_hatp(
    num_nodes: int,
    target_size: int,
    relative_error: float = 0.05,
    additive_error_scale: float = 64.0,
) -> int:
    """Heuristic sample size matching "the largest number of samples HATP uses".

    The experiments (Section VI-A) give NSG and NDG a sample budget equal to
    the largest per-iteration batch HATP generates.  HATP's largest batch is
    reached when both error parameters hit their floors
    (``ε_i = ε`` and ``n_i ζ_i = 1``), giving
    ``θ ≈ (1+ε/3)² ln(4 k n²) / (2 ε / n)``.  This helper computes that
    number with a cap so the pure-Python engine stays tractable; the
    ``additive_error_scale`` mirrors the ``n_i ζ_0 = 64`` initialisation.
    """
    import math

    n = max(int(num_nodes), 2)
    k = max(int(target_size), 1)
    zeta_floor = 1.0 / n
    delta = 1.0 / (k * n * max(n, 2))
    theta = (
        (1.0 + relative_error / 3.0) ** 2
        * math.log(4.0 / delta)
        / (2.0 * relative_error * max(zeta_floor, 1.0 / (additive_error_scale * n)))
    )
    return max(1, int(theta))
