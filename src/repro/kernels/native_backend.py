"""The ``"native"`` backend: C kernels compiled on first use via cffi.

A single small C translation unit implements the per-layer primitives of
:mod:`repro.kernels.layered` — the residual-filtered live-edge count,
the fused coin-flip sweep with open-addressing dedup, fused live-edge
replay, and the stable counting sort that assembles flat batches.  It is
compiled once per machine with the system C compiler (``cc``/``gcc``,
override with ``CC``) into a content-addressed shared object under a
per-user cache directory, then ``dlopen``'d by every process that needs
it — pool workers pay one ``dlopen``, never a recompile.

The backend consumes the identical pre-drawn RNG coin stream as
``"vectorized"`` (the bulk draws stay in NumPy; see the layered driver)
and is therefore bit-for-bit identical to it.  Node arrays are read in
their storage dtype: dedicated ``uint32`` entry points consume mmap'd
``.rgx`` CSR arrays in place.

Availability is probed, never assumed: without cffi or a C compiler the
registry reports the backend unavailable and ``"auto"`` falls back to
``"vectorized"`` silently.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Optional

import numpy as np

from repro.kernels import layered
from repro.kernels.registry import KernelBackend, KernelCapabilities
from repro.utils.exceptions import ValidationError

#: Override the cache directory for the compiled shared object.
CACHE_DIR_ENV_VAR = "REPRO_NATIVE_CACHE_DIR"

CAPABILITIES = KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=True)

_SOURCE = r"""
#include <stdint.h>

/* Count the frontier's live (active-endpoint) edges — sizes the layer's
 * single bulk coin draw without materialising the edge list. */
#define COUNT_LIVE(NAME, NODE_T)                                               \
int64_t NAME(int64_t F, const int64_t *fnodes, const int64_t *offsets,         \
             const NODE_T *nodes, const uint8_t *active)                       \
{                                                                              \
    int64_t L = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t node = fnodes[f];                                              \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e)                          \
            L += active[(int64_t)nodes[e]];                                    \
    }                                                                          \
    return L;                                                                  \
}

COUNT_LIVE(repro_count_live_i64, int64_t)
COUNT_LIVE(repro_count_live_u32, uint32_t)

int64_t repro_degree_sum(int64_t F, const int64_t *fnodes,
                         const int64_t *offsets)
{
    int64_t total = 0;
    for (int64_t f = 0; f < F; ++f) {
        int64_t node = fnodes[f];
        total += offsets[node + 1] - offsets[node];
    }
    return total;
}

static inline uint64_t repro_slot(int64_t key, uint64_t mask)
{
    uint64_t h = (uint64_t)key * 0x9E3779B97F4A7C15ULL;
    return (h ^ (h >> 32)) & mask;
}

/* Insert key if absent; returns 1 when inserted, 0 when already present. */
static inline int repro_insert(int64_t *table, uint64_t mask, int64_t key)
{
    uint64_t slot = repro_slot(key, mask);
    for (;;) {
        int64_t cur = table[slot];
        if (cur == key)
            return 0;
        if (cur == -1) {
            table[slot] = key;
            return 1;
        }
        slot = (slot + 1) & mask;
    }
}

/* Fused gather+advance: one CSR walk in frontier order applying the
 * pre-drawn coins to live edges (strict flip < prob) with
 * insert-if-absent dedup.  The coin cursor advances only on live edges,
 * so the flip/edge pairing equals the reference's gather-then-flip. */
#define SWEEP(NAME, NODE_T)                                                    \
int64_t NAME(int64_t F, const int64_t *fids, const int64_t *fnodes,            \
             const int64_t *offsets, const NODE_T *nodes,                      \
             const double *probs, const uint8_t *active,                       \
             const double *flips, int64_t n, int64_t *table, int64_t mask,     \
             int64_t *next_ids, int64_t *next_src)                             \
{                                                                              \
    int64_t K = 0;                                                             \
    int64_t c = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t id = fids[f];                                                  \
        int64_t node = fnodes[f];                                              \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e) {                        \
            int64_t s = (int64_t)nodes[e];                                     \
            if (active[s]) {                                                   \
                if (flips[c] < probs[e]) {                                     \
                    int64_t key = id * n + s;                                  \
                    if (repro_insert(table, (uint64_t)mask, key)) {            \
                        next_ids[K] = id;                                      \
                        next_src[K] = s;                                       \
                        ++K;                                                   \
                    }                                                          \
                }                                                              \
                ++c;                                                           \
            }                                                                  \
        }                                                                      \
    }                                                                          \
    return K;                                                                  \
}

SWEEP(repro_sweep_i64, int64_t)
SWEEP(repro_sweep_u32, uint32_t)

/* Sweep specialisation for fully-active views: no mask reads, the coin
 * cursor equals the edge cursor, and the endpoint id is only loaded
 * when its coin succeeds (most coins fail under IC probabilities). */
#define SWEEP_FULL(NAME, NODE_T)                                               \
int64_t NAME(int64_t F, const int64_t *fids, const int64_t *fnodes,            \
             const int64_t *offsets, const NODE_T *nodes,                      \
             const double *probs, const double *flips, int64_t n,              \
             int64_t *table, int64_t mask,                                     \
             int64_t *next_ids, int64_t *next_src)                             \
{                                                                              \
    int64_t K = 0;                                                             \
    int64_t c = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t id = fids[f];                                                  \
        int64_t node = fnodes[f];                                              \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e, ++c) {                   \
            if (flips[c] < probs[e]) {                                         \
                int64_t s = (int64_t)nodes[e];                                 \
                int64_t key = id * n + s;                                      \
                if (repro_insert(table, (uint64_t)mask, key)) {                \
                    next_ids[K] = id;                                          \
                    next_src[K] = s;                                           \
                    ++K;                                                       \
                }                                                              \
            }                                                                  \
        }                                                                      \
    }                                                                          \
    return K;                                                                  \
}

SWEEP_FULL(repro_sweep_full_i64, int64_t)
SWEEP_FULL(repro_sweep_full_u32, uint32_t)

/* Inline-RNG sweeps: draw each coin straight from the generator's C
 * next_double entry point (the same function NumPy's bulk random()
 * loops over), so the pre-sizing count pass and the flips array vanish
 * while the consumed stream stays bit-for-bit the reference's.  Coins
 * are drawn exactly where the flips-array variants would read them:
 * once per live edge, in frontier-then-edge order. */
#define SWEEP_RNG(NAME, NODE_T)                                                \
int64_t NAME(int64_t F, const int64_t *fids, const int64_t *fnodes,            \
             const int64_t *offsets, const NODE_T *nodes,                      \
             const double *probs, const uint8_t *active,                       \
             double (*next_double)(void *), void *state,                       \
             int64_t n, int64_t *table, int64_t mask,                          \
             int64_t *next_ids, int64_t *next_src)                            \
{                                                                              \
    int64_t K = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t id = fids[f];                                                  \
        int64_t node = fnodes[f];                                              \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e) {                        \
            int64_t s = (int64_t)nodes[e];                                     \
            if (active[s]) {                                                   \
                if (next_double(state) < probs[e]) {                           \
                    int64_t key = id * n + s;                                  \
                    if (repro_insert(table, (uint64_t)mask, key)) {            \
                        next_ids[K] = id;                                      \
                        next_src[K] = s;                                       \
                        ++K;                                                   \
                    }                                                          \
                }                                                              \
            }                                                                  \
        }                                                                      \
    }                                                                          \
    return K;                                                                  \
}

SWEEP_RNG(repro_sweep_rng_i64, int64_t)
SWEEP_RNG(repro_sweep_rng_u32, uint32_t)

#define SWEEP_RNG_FULL(NAME, NODE_T)                                           \
int64_t NAME(int64_t F, const int64_t *fids, const int64_t *fnodes,            \
             const int64_t *offsets, const NODE_T *nodes,                      \
             const double *probs,                                              \
             double (*next_double)(void *), void *state,                       \
             int64_t n, int64_t *table, int64_t mask,                          \
             int64_t *next_ids, int64_t *next_src)                            \
{                                                                              \
    int64_t K = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t id = fids[f];                                                  \
        int64_t node = fnodes[f];                                              \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e) {                        \
            if (next_double(state) < probs[e]) {                               \
                int64_t s = (int64_t)nodes[e];                                 \
                int64_t key = id * n + s;                                      \
                if (repro_insert(table, (uint64_t)mask, key)) {                \
                    next_ids[K] = id;                                          \
                    next_src[K] = s;                                           \
                    ++K;                                                       \
                }                                                              \
            }                                                                  \
        }                                                                      \
    }                                                                          \
    return K;                                                                  \
}

SWEEP_RNG_FULL(repro_sweep_rng_full_i64, int64_t)
SWEEP_RNG_FULL(repro_sweep_rng_full_u32, uint32_t)

void repro_insert_keys(int64_t L, const int64_t *keys,
                       int64_t *table, int64_t mask)
{
    for (int64_t i = 0; i < L; ++i)
        repro_insert(table, (uint64_t)mask, keys[i]);
}

void repro_rehash(int64_t old_cap, const int64_t *old_table,
                  int64_t *new_table, int64_t new_mask)
{
    for (int64_t i = 0; i < old_cap; ++i) {
        int64_t key = old_table[i];
        if (key != -1)
            repro_insert(new_table, (uint64_t)new_mask, key);
    }
}

#define REPLAY(NAME, NODE_T)                                                   \
int64_t NAME(int64_t F, const int64_t *fids, const int64_t *fnodes,            \
             const int64_t *offsets, const NODE_T *targets,                    \
             const uint8_t *active, const uint8_t *live, int64_t m,            \
             int64_t n, int64_t *table, int64_t mask,                          \
             int64_t *next_ids, int64_t *next_nodes)                           \
{                                                                              \
    int64_t K = 0;                                                             \
    for (int64_t f = 0; f < F; ++f) {                                          \
        int64_t id = fids[f];                                                  \
        int64_t node = fnodes[f];                                              \
        const uint8_t *row = live + id * m;                                    \
        int64_t end = offsets[node + 1];                                       \
        for (int64_t e = offsets[node]; e < end; ++e) {                        \
            int64_t t = (int64_t)targets[e];                                   \
            if (active[t] && row[e]) {                                         \
                int64_t key = id * n + t;                                      \
                if (repro_insert(table, (uint64_t)mask, key)) {                \
                    next_ids[K] = id;                                          \
                    next_nodes[K] = t;                                         \
                    ++K;                                                       \
                }                                                              \
            }                                                                  \
        }                                                                      \
    }                                                                          \
    return K;                                                                  \
}

REPLAY(repro_replay_i64, int64_t)
REPLAY(repro_replay_u32, uint32_t)

void repro_group_pairs(int64_t M, const int64_t *ids, const int64_t *nodes,
                       int64_t count, int64_t *offsets, int64_t *out_nodes,
                       int64_t *cursor)
{
    for (int64_t i = 0; i < M; ++i)
        offsets[ids[i] + 1] += 1;
    for (int64_t c = 0; c < count; ++c)
        offsets[c + 1] += offsets[c];
    for (int64_t c = 0; c < count; ++c)
        cursor[c] = offsets[c];
    for (int64_t i = 0; i < M; ++i)
        out_nodes[cursor[ids[i]]++] = nodes[i];
}
"""

_CDEF = """
int64_t repro_count_live_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint8_t *);
int64_t repro_count_live_u32(int64_t, const int64_t *, const int64_t *,
    const uint32_t *, const uint8_t *);
int64_t repro_degree_sum(int64_t, const int64_t *, const int64_t *);
int64_t repro_sweep_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const int64_t *, const double *, const uint8_t *,
    const double *, int64_t, int64_t *, int64_t, int64_t *, int64_t *);
int64_t repro_sweep_u32(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint32_t *, const double *, const uint8_t *,
    const double *, int64_t, int64_t *, int64_t, int64_t *, int64_t *);
int64_t repro_sweep_full_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const int64_t *, const double *, const double *,
    int64_t, int64_t *, int64_t, int64_t *, int64_t *);
int64_t repro_sweep_full_u32(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint32_t *, const double *, const double *,
    int64_t, int64_t *, int64_t, int64_t *, int64_t *);
int64_t repro_sweep_rng_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const int64_t *, const double *, const uint8_t *,
    double (*next_double)(void *), void *, int64_t, int64_t *, int64_t,
    int64_t *, int64_t *);
int64_t repro_sweep_rng_u32(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint32_t *, const double *, const uint8_t *,
    double (*next_double)(void *), void *, int64_t, int64_t *, int64_t,
    int64_t *, int64_t *);
int64_t repro_sweep_rng_full_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const int64_t *, const double *,
    double (*next_double)(void *), void *, int64_t, int64_t *, int64_t,
    int64_t *, int64_t *);
int64_t repro_sweep_rng_full_u32(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint32_t *, const double *,
    double (*next_double)(void *), void *, int64_t, int64_t *, int64_t,
    int64_t *, int64_t *);
void repro_insert_keys(int64_t, const int64_t *, int64_t *, int64_t);
void repro_rehash(int64_t, const int64_t *, int64_t *, int64_t);
int64_t repro_replay_i64(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const int64_t *, const uint8_t *, const uint8_t *,
    int64_t, int64_t, int64_t *, int64_t, int64_t *, int64_t *);
int64_t repro_replay_u32(int64_t, const int64_t *, const int64_t *,
    const int64_t *, const uint32_t *, const uint8_t *, const uint8_t *,
    int64_t, int64_t, int64_t *, int64_t, int64_t *, int64_t *);
void repro_group_pairs(int64_t, const int64_t *, const int64_t *,
    int64_t, int64_t *, int64_t *, int64_t *);
"""


def _compiler() -> Optional[str]:
    explicit = os.environ.get("CC")
    if explicit:
        return explicit if shutil.which(explicit) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def probe() -> Optional[str]:
    """``None`` when the native backend can build, else the reason it can't."""
    try:
        import cffi  # noqa: F401
    except ImportError:
        return "the cffi package is not installed"
    if _compiler() is None:
        return "no C compiler found (cc/gcc/clang; set CC to override)"
    return None


def _cache_dir() -> str:
    override = os.environ.get(CACHE_DIR_ENV_VAR)
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-native-kernels-{uid}")


def _build_library() -> str:
    """Compile the kernel source into a content-addressed ``.so`` (cached)."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    library = os.path.join(cache, f"repro_kernels_{digest}.so")
    if os.path.exists(library):
        return library
    compiler = _compiler()
    if compiler is None:  # pragma: no cover - guarded by probe()
        raise ValidationError(
            "backend 'native' needs a C compiler (cc/gcc/clang; set CC)"
        )
    os.makedirs(cache, exist_ok=True)
    source_path = os.path.join(cache, f"repro_kernels_{digest}.c")
    with open(source_path, "w") as handle:
        handle.write(_SOURCE)
    with tempfile.NamedTemporaryFile(
        dir=cache, suffix=".so", delete=False
    ) as scratch:
        scratch_path = scratch.name
    command = [
        compiler,
        "-O3",
        "-std=c99",
        "-fPIC",
        "-shared",
        "-o",
        scratch_path,
        source_path,
    ]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        try:
            os.unlink(scratch_path)
        except OSError:
            pass
        raise ValidationError(
            f"backend 'native' failed to compile its kernels with "
            f"{compiler!r}: {result.stderr.strip()[:500]}"
        )
    # Atomic publish: concurrent builders race to an identical artifact.
    os.replace(scratch_path, library)
    return library


class NativeKernels:
    """The compiled primitive set the layered driver drives.

    Per-call pointer casts go through pre-parsed ctype objects (parsing
    the type string per call costs more than the small kernels
    themselves), and :meth:`bind` returns a per-sweep adapter with the
    static CSR/mask pointers pre-cast once so the hot layer loop casts
    only the arrays that change between layers.
    """

    capabilities = CAPABILITIES

    def __init__(self) -> None:
        from cffi import FFI

        self._ffi = FFI()
        self._ffi.cdef(_CDEF)
        self._lib = self._ffi.dlopen(_build_library())
        self._i64p = self._ffi.typeof("int64_t *")
        self._u32p = self._ffi.typeof("uint32_t *")
        self._f64p = self._ffi.typeof("double *")
        self._u8p = self._ffi.typeof("uint8_t *")
        self._ndfp = self._ffi.typeof("double (*)(void *)")
        self._voidp = self._ffi.typeof("void *")

    def _ptr(self, ctype, array: np.ndarray):
        return self._ffi.cast(ctype, array.ctypes.data)

    def _nodes_ptr(self, array: np.ndarray):
        if array.dtype == np.uint32:
            return "u32", self._ffi.cast(self._u32p, array.ctypes.data)
        return "i64", self._ffi.cast(self._i64p, array.ctypes.data)

    def bind(self, csr, active: np.ndarray, rng=None) -> "_BoundNativeKernels":
        """A sweep-scoped kernel set with the static pointers pre-cast."""
        return _BoundNativeKernels(self, csr, active, rng)

    def degree_sum(self, fnodes, offsets):
        return self._lib.repro_degree_sum(
            fnodes.shape[0],
            self._ptr(self._i64p, fnodes),
            self._ptr(self._i64p, offsets),
        )

    def count_live(self, fnodes, offsets, nodes, active):
        variant, nodes_ptr = self._nodes_ptr(nodes)
        func = (
            self._lib.repro_count_live_u32
            if variant == "u32"
            else self._lib.repro_count_live_i64
        )
        return func(
            fnodes.shape[0],
            self._ptr(self._i64p, fnodes),
            self._ptr(self._i64p, offsets),
            nodes_ptr,
            self._ptr(self._u8p, active),
        )

    def sweep(self, fids, fnodes, offsets, nodes, probs, active, flips, n, table, next_ids, next_src):
        variant, nodes_ptr = self._nodes_ptr(nodes)
        func = self._lib.repro_sweep_u32 if variant == "u32" else self._lib.repro_sweep_i64
        return func(
            fids.shape[0],
            self._ptr(self._i64p, fids),
            self._ptr(self._i64p, fnodes),
            self._ptr(self._i64p, offsets),
            nodes_ptr,
            self._ptr(self._f64p, probs),
            self._ptr(self._u8p, active),
            self._ptr(self._f64p, flips),
            n,
            self._ptr(self._i64p, table),
            table.shape[0] - 1,
            self._ptr(self._i64p, next_ids),
            self._ptr(self._i64p, next_src),
        )

    def sweep_full(self, fids, fnodes, offsets, nodes, probs, flips, n, table, next_ids, next_src):
        variant, nodes_ptr = self._nodes_ptr(nodes)
        func = (
            self._lib.repro_sweep_full_u32
            if variant == "u32"
            else self._lib.repro_sweep_full_i64
        )
        return func(
            fids.shape[0],
            self._ptr(self._i64p, fids),
            self._ptr(self._i64p, fnodes),
            self._ptr(self._i64p, offsets),
            nodes_ptr,
            self._ptr(self._f64p, probs),
            self._ptr(self._f64p, flips),
            n,
            self._ptr(self._i64p, table),
            table.shape[0] - 1,
            self._ptr(self._i64p, next_ids),
            self._ptr(self._i64p, next_src),
        )

    def insert_keys(self, keys, table):
        self._lib.repro_insert_keys(
            keys.shape[0],
            self._ptr(self._i64p, keys),
            self._ptr(self._i64p, table),
            table.shape[0] - 1,
        )

    def rehash(self, old_table, new_table):
        self._lib.repro_rehash(
            old_table.shape[0],
            self._ptr(self._i64p, old_table),
            self._ptr(self._i64p, new_table),
            new_table.shape[0] - 1,
        )

    def replay_advance(
        self, fids, fnodes, offsets, targets, active, live, m, n, table, next_ids, next_nodes
    ):
        variant, targets_ptr = self._nodes_ptr(targets)
        func = self._lib.repro_replay_u32 if variant == "u32" else self._lib.repro_replay_i64
        return func(
            fids.shape[0],
            self._ptr(self._i64p, fids),
            self._ptr(self._i64p, fnodes),
            self._ptr(self._i64p, offsets),
            targets_ptr,
            self._ptr(self._u8p, active),
            self._ptr(self._u8p, live),
            m,
            n,
            self._ptr(self._i64p, table),
            table.shape[0] - 1,
            self._ptr(self._i64p, next_ids),
            self._ptr(self._i64p, next_nodes),
        )

    def group_pairs(self, ids, nodes, count):
        offsets = np.zeros(count + 1, dtype=np.int64)
        out_nodes = np.empty(ids.shape[0], dtype=np.int64)
        cursor = np.empty(max(count, 1), dtype=np.int64)
        self._lib.repro_group_pairs(
            ids.shape[0],
            self._ptr(self._i64p, ids),
            self._ptr(self._i64p, nodes),
            count,
            self._ptr(self._i64p, offsets),
            self._ptr(self._i64p, out_nodes),
            self._ptr(self._i64p, cursor),
        )
        return offsets, out_nodes


class _BoundNativeKernels:
    """Sweep-scoped view of :class:`NativeKernels`.

    The CSR arrays and the residual mask are fixed for the whole frontier
    sweep, so their pointers (and the u32/i64 gather variant) are cast
    exactly once here; per-layer calls only cast the layer's own arrays.
    The driver passes the full protocol signatures — the static operands
    are ignored in favour of the pre-cast pointers.
    """

    __slots__ = ("_parent", "_lib", "_offsets", "_nodes", "_probs", "_active",
                 "_count_live", "_sweep", "_sweep_full", "_replay", "_pin",
                 "supports_inline_rng", "_sweep_rng", "_sweep_rng_full",
                 "_rng_fn", "_rng_state")

    def __init__(self, parent: NativeKernels, csr, active: np.ndarray, rng=None) -> None:
        self._parent = parent
        self._lib = parent._lib
        ptr = parent._ptr
        self._offsets = ptr(parent._i64p, csr.offsets)
        if csr.nodes.dtype == np.uint32:
            self._nodes = ptr(parent._u32p, csr.nodes)
            self._count_live = self._lib.repro_count_live_u32
            self._sweep = self._lib.repro_sweep_u32
            self._sweep_full = self._lib.repro_sweep_full_u32
            self._replay = self._lib.repro_replay_u32
            self._sweep_rng = self._lib.repro_sweep_rng_u32
            self._sweep_rng_full = self._lib.repro_sweep_rng_full_u32
        else:
            self._nodes = ptr(parent._i64p, csr.nodes)
            self._count_live = self._lib.repro_count_live_i64
            self._sweep = self._lib.repro_sweep_i64
            self._sweep_full = self._lib.repro_sweep_full_i64
            self._replay = self._lib.repro_replay_i64
            self._sweep_rng = self._lib.repro_sweep_rng_i64
            self._sweep_rng_full = self._lib.repro_sweep_rng_full_i64
        self._probs = ptr(parent._f64p, csr.probs)
        self._active = ptr(parent._u8p, active)
        # Keep the arrays (and the generator whose state we point into)
        # alive for as long as their raw pointers are.
        self._pin = (csr, active, rng)
        self.supports_inline_rng = False
        if rng is not None:
            try:
                # Every NumPy BitGenerator exports its C next_double entry
                # point and state pointer; drawing through them consumes
                # exactly the stream bulk Generator.random() would.
                interface = rng.bit_generator.ctypes
                self._rng_fn = parent._ffi.cast(
                    parent._ndfp,
                    ctypes.cast(interface.next_double, ctypes.c_void_p).value,
                )
                self._rng_state = parent._ffi.cast(
                    parent._voidp, interface.state_address
                )
                self.supports_inline_rng = True
            except (AttributeError, TypeError):
                pass

    def degree_sum(self, fnodes, offsets):
        parent = self._parent
        return self._lib.repro_degree_sum(
            fnodes.shape[0], parent._ptr(parent._i64p, fnodes), self._offsets
        )

    def count_live(self, fnodes, offsets, nodes, active):
        parent = self._parent
        return self._count_live(
            fnodes.shape[0],
            parent._ptr(parent._i64p, fnodes),
            self._offsets,
            self._nodes,
            self._active,
        )

    def sweep(self, fids, fnodes, offsets, nodes, probs, active, flips, n, table, next_ids, next_src):
        parent = self._parent
        ptr, i64p = parent._ptr, parent._i64p
        return self._sweep(
            fids.shape[0],
            ptr(i64p, fids),
            ptr(i64p, fnodes),
            self._offsets,
            self._nodes,
            self._probs,
            self._active,
            ptr(parent._f64p, flips),
            n,
            ptr(i64p, table),
            table.shape[0] - 1,
            ptr(i64p, next_ids),
            ptr(i64p, next_src),
        )

    def sweep_full(self, fids, fnodes, offsets, nodes, probs, flips, n, table, next_ids, next_src):
        parent = self._parent
        ptr, i64p = parent._ptr, parent._i64p
        return self._sweep_full(
            fids.shape[0],
            ptr(i64p, fids),
            ptr(i64p, fnodes),
            self._offsets,
            self._nodes,
            self._probs,
            ptr(parent._f64p, flips),
            n,
            ptr(i64p, table),
            table.shape[0] - 1,
            ptr(i64p, next_ids),
            ptr(i64p, next_src),
        )

    def sweep_rng(self, fids, fnodes, n, table, next_ids, next_src):
        parent = self._parent
        ptr, i64p = parent._ptr, parent._i64p
        return self._sweep_rng(
            fids.shape[0],
            ptr(i64p, fids),
            ptr(i64p, fnodes),
            self._offsets,
            self._nodes,
            self._probs,
            self._active,
            self._rng_fn,
            self._rng_state,
            n,
            ptr(i64p, table),
            table.shape[0] - 1,
            ptr(i64p, next_ids),
            ptr(i64p, next_src),
        )

    def sweep_rng_full(self, fids, fnodes, n, table, next_ids, next_src):
        parent = self._parent
        ptr, i64p = parent._ptr, parent._i64p
        return self._sweep_rng_full(
            fids.shape[0],
            ptr(i64p, fids),
            ptr(i64p, fnodes),
            self._offsets,
            self._nodes,
            self._probs,
            self._rng_fn,
            self._rng_state,
            n,
            ptr(i64p, table),
            table.shape[0] - 1,
            ptr(i64p, next_ids),
            ptr(i64p, next_src),
        )

    def insert_keys(self, keys, table):
        self._parent.insert_keys(keys, table)

    def rehash(self, old_table, new_table):
        self._parent.rehash(old_table, new_table)

    def replay_advance(
        self, fids, fnodes, offsets, targets, active, live, m, n, table, next_ids, next_nodes
    ):
        parent = self._parent
        ptr, i64p = parent._ptr, parent._i64p
        return self._replay(
            fids.shape[0],
            ptr(i64p, fids),
            ptr(i64p, fnodes),
            self._offsets,
            self._nodes,
            self._active,
            ptr(parent._u8p, live),
            m,
            n,
            ptr(i64p, table),
            table.shape[0] - 1,
            ptr(i64p, next_ids),
            ptr(i64p, next_nodes),
        )

    def group_pairs(self, ids, nodes, count):
        return self._parent.group_pairs(ids, nodes, count)


def load() -> KernelBackend:
    """Registry loader: compile (cached), dlopen, wire the layered driver."""
    kernels = NativeKernels()
    return KernelBackend(
        name="native",
        capabilities=CAPABILITIES,
        generate_batch=lambda view, roots, rng: layered.generate_layered(
            view, roots, rng, kernels
        ),
        simulate_batch=lambda view, seeds, count, rng: layered.simulate_layered(
            view, seeds, count, rng, kernels
        ),
        replay_batch=lambda view, seeds, live: layered.replay_layered(
            view, seeds, live, kernels
        ),
        warm_up=lambda: None,
    )
