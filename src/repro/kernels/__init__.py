"""Kernel registry and compute backends for the three hot kernels.

The library's hot loops — batched reverse-BFS RR sampling
(:mod:`repro.sampling.engine`), forward IC simulation and deterministic
live-edge replay (:mod:`repro.diffusion.mc_engine`) — are dispatched
through a registry of named backends, each registering a
``(generate_batch, simulate_batch, replay_batch)`` triple:

``"vectorized"``
    The NumPy frontier-at-a-time engine (the default and the bit-for-bit
    reference all other backends are differential-tested against).
``"python"``
    The naive loop-based executable specification of the RNG contract.
``"numba"``
    ``@njit``-compiled kernels (requires the ``repro-tpm[fast]`` extra).
``"native"``
    cffi/C kernels compiled once per machine with the system C compiler.

``resolve_backend("auto")`` picks the fastest available backend; because
every backend consumes the identical pre-drawn RNG coin stream, the
choice never changes results.  ``backend=None`` (the default everywhere)
resolves through ``REPRO_BACKEND`` and falls back to ``"vectorized"``,
so defaults preserve the historical streams bit-for-bit.

See ``docs/performance.md`` ("Kernel registry & compiled backends").
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.registry import (
    AUTO,
    BACKEND_ENV_VAR,
    KernelBackend,
    KernelCapabilities,
    PreparedCSR,
    available_backends,
    backend_capabilities,
    backend_priority,
    get_backend,
    prepare_csr,
    register_backend,
    registered_backends,
    resolve_backend,
    warm_up,
)

__all__ = [
    "AUTO",
    "BACKEND_ENV_VAR",
    "KernelBackend",
    "KernelCapabilities",
    "PreparedCSR",
    "available_backends",
    "backend_capabilities",
    "backend_priority",
    "get_backend",
    "prepare_csr",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "warm_up",
]


def _load_vectorized() -> KernelBackend:
    from repro.kernels import reference

    return reference.load_vectorized()


def _load_python() -> KernelBackend:
    from repro.kernels import reference

    return reference.load_python()


def _load_numba() -> KernelBackend:
    from repro.kernels import numba_backend

    return numba_backend.load()


def _probe_numba() -> Optional[str]:
    try:
        import numba  # noqa: F401
    except ImportError:
        return (
            "numba is not installed; install the compiled extras with "
            "`pip install repro-tpm[fast]`"
        )
    return None


def _load_native() -> KernelBackend:
    from repro.kernels import native_backend

    return native_backend.load()


def _probe_native() -> Optional[str]:
    from repro.kernels import native_backend

    return native_backend.probe()


# Priorities order "auto" resolution: numba > native > vectorized > python.
register_backend(
    "vectorized",
    _load_vectorized,
    KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=False),
    priority=10,
)
register_backend(
    "python",
    _load_python,
    KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=False),
    priority=0,
)
register_backend(
    "numba",
    _load_numba,
    KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=True),
    priority=30,
    probe=_probe_numba,
)
register_backend(
    "native",
    _load_native,
    KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=True),
    priority=20,
    probe=_probe_native,
)
