"""Shared per-layer orchestration for compiled kernel backends.

The compiled backends (numba, native/cffi) replace the *per-layer array
work* of the NumPy engines — CSR gather, residual filter, coin-flip
application, hash-set dedup, frontier construction — with machine code,
while the bulk RNG draws stay in NumPy.  The drivers here run that
ping-pong so the stream contract is structurally identical to the
``"vectorized"`` reference:

1. a compiled ``count_live`` walks the frontier's CSR slices in frontier
   order and counts the edges whose endpoint is active (the residual
   filter *before* any coin is flipped);
2. Python draws the layer's coins with exactly one ``rng.random(L)``
   call over the ``L`` surviving edges — the same call, on the same
   generator, with the same ``L`` as the reference, so generator
   end-state continuity holds for callers that share one generator
   across successive batches;
3. a compiled ``sweep`` re-walks the same slices in the same order,
   applies the strict ``flip < prob`` test to each live edge (the coin
   cursor advances only on live edges, so the flip/edge pairing equals
   the reference's gather-then-flip) and an insert-if-absent hash-set
   walk in edge order, which reproduces the reference's two-stage dedup
   (drop pairs seen in earlier layers, then keep first occurrences
   within the layer) pair for pair.

Batches are assembled by a compiled stable counting sort
(``group_pairs``) whose output equals the reference's stable
``argsort`` + ``bincount`` grouping element for element.

A backend plugs in by providing a *kernel set* — an object with the
compiled primitives (see :class:`KernelSetProtocol` below for the
informal contract) — and reusing :func:`generate_layered`,
:func:`simulate_layered` and :func:`replay_layered` as its registry
entry points.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.graphs.residual import ResidualGraph
from repro.kernels.registry import KernelCapabilities, PreparedCSR, prepare_csr

#: Informal contract of a compiled kernel set (duck-typed, not enforced):
#:
#: ``degree_sum(frontier_nodes, offsets) -> total``
#:     Sum of CSR out-degrees over the frontier (sizes the replay round).
#: ``count_live(frontier_nodes, offsets, nodes, active) -> L``
#:     Number of live (active-endpoint) edges out of the frontier —
#:     sizes the layer's single bulk coin draw without materialising
#:     the edge list.
#: ``sweep(frontier_ids, frontier_nodes, offsets, nodes, probs, active,
#:         flips, n, table, next_ids, next_src) -> K``
#:     Fused gather+advance: walk the frontier's CSR slices in order,
#:     apply ``flips[c] < prob`` to live edges (the coin cursor ``c``
#:     advances only on live edges, matching the reference's
#:     gather-then-flip pairing), insert ``id*n + src`` into the
#:     open-addressing ``table`` if absent, append survivors.
#: ``sweep_full(frontier_ids, frontier_nodes, offsets, nodes, probs,
#:              flips, n, table, next_ids, next_src) -> K``
#:     ``sweep`` specialised for fully-active views: every edge is live,
#:     so the mask is never read and the coin cursor tracks the edge
#:     cursor.
#: ``insert_keys(keys, table)``
#:     Seed the table with (distinct) keys.
#: ``rehash(old_table, new_table)``
#:     Re-insert every member key of ``old_table`` into ``new_table``.
#: ``replay_advance(frontier_ids, frontier_nodes, offsets, targets,
#:                  active, live, m, n, table, next_ids, next_nodes) -> K``
#:     Fused gather+advance for deterministic live-edge replay.
#: ``group_pairs(ids, nodes, count) -> (offsets, grouped_nodes)``
#:     Stable counting sort of ``(id, node)`` pairs by id.
#:
#: A kernel set may additionally provide ``bind(csr, active, rng)``
#: returning a sweep-scoped kernel set with the same contract; the
#: drivers call it once per sweep so FFI-style backends can
#: pre-translate the pointers of the arrays that never change between
#: layers.  A bound set that reports ``supports_inline_rng`` must offer
#: ``sweep_rng(frontier_ids, frontier_nodes, n, table, next_ids,
#: next_src)`` and ``sweep_rng_full(...)``: sweeps that draw each coin
#: directly from the generator's C ``next_double`` entry point (the
#: function NumPy's bulk ``Generator.random`` loops over), once per
#: live edge in frontier-then-edge order — the identical stream, with
#: no count pass and no coin array.
KernelSetProtocol = object


def _bound(kernels, csr: PreparedCSR, active: np.ndarray, rng=None):
    """The sweep-scoped kernel set (``bind`` hook, identity otherwise)."""
    bind = getattr(kernels, "bind", None)
    return kernels if bind is None else bind(csr, active, rng)


def _as_uint8_mask(mask: np.ndarray) -> np.ndarray:
    """A boolean mask as a C-contiguous uint8 array (zero-copy if possible)."""
    mask = np.ascontiguousarray(mask)
    if mask.dtype == np.bool_:
        return mask.view(np.uint8)
    return mask.astype(np.uint8)


class _HashSet:
    """Open-addressing int64 key set driven by compiled probe loops.

    The table is a power-of-two int64 array with ``-1`` as the empty
    slot (valid keys ``id*n + node`` are always >= 0); occupancy is
    tracked here and the load factor is kept strictly below one half by
    :meth:`reserve` (growth rehashes through the backend's compiled
    ``rehash``).
    """

    __slots__ = ("kernels", "table", "size")

    def __init__(self, kernels, expected: int) -> None:
        self.kernels = kernels
        self.table = np.full(_capacity_for(expected), -1, dtype=np.int64)
        self.size = 0

    def reserve(self, incoming: int) -> None:
        needed = _capacity_for(self.size + incoming)
        if needed > self.table.shape[0]:
            grown = np.full(needed, -1, dtype=np.int64)
            self.kernels.rehash(self.table, grown)
            self.table = grown

    def insert_distinct(self, keys: np.ndarray) -> None:
        self.reserve(keys.shape[0])
        self.kernels.insert_keys(keys, self.table)
        self.size += int(keys.shape[0])


def _capacity_for(entries: int) -> int:
    capacity = 16
    while capacity < 2 * (entries + 1):
        capacity <<= 1
    return capacity


def _finalize(
    kernels,
    layer_ids: List[np.ndarray],
    layer_nodes: List[np.ndarray],
    count: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Group discovered pairs into flat ``(offsets, nodes)`` form.

    A stable counting sort by id — identical output to the reference's
    stable ``argsort`` + ``bincount`` assembly.
    """
    all_ids = np.concatenate(layer_ids)
    all_nodes = np.concatenate(layer_nodes)
    return kernels.group_pairs(all_ids, all_nodes, count)


def _coin_sweep(
    kernels,
    csr: PreparedCSR,
    active: np.ndarray,
    frontier_ids: np.ndarray,
    frontier_nodes: np.ndarray,
    n: int,
    count: int,
    rng: np.random.Generator,
    fully_active: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """The shared coin-flip frontier loop of generate and simulate.

    Reverse BFS (RR generation) and forward IC simulation differ only in
    which CSR they walk and how the initial frontier is built; the layer
    loop — and therefore the RNG contract — is one piece of code.

    ``fully_active`` declares that every node passes the residual mask,
    in which case the live-edge count equals the frontier's degree sum —
    an offsets-only read that skips one full CSR walk per layer.
    """
    kernels = _bound(kernels, csr, active, rng)
    # FFI-style kernel sets can draw coins straight from the generator's
    # C next_double entry point — the count pass and the flips array
    # disappear while the consumed stream stays the reference's.
    inline_rng = getattr(kernels, "supports_inline_rng", False)
    layer_ids = [frontier_ids]
    layer_nodes = [frontier_nodes]
    table = _HashSet(kernels, frontier_ids.shape[0])
    if frontier_ids.size:
        table.insert_distinct(frontier_ids * n + frontier_nodes)

    while frontier_nodes.size:
        if inline_rng:
            # Buffers are sized by the degree sum (an offsets-only read,
            # >= the live-edge count); the sweep itself draws one coin
            # per live edge in frontier-then-edge order — exactly the
            # positions the bulk-draw path would read.
            capacity = int(kernels.degree_sum(frontier_nodes, csr.offsets))
            if capacity == 0:
                break
            table.reserve(capacity)
            next_ids = np.empty(capacity, dtype=np.int64)
            next_src = np.empty(capacity, dtype=np.int64)
            if fully_active:
                survivors = int(
                    kernels.sweep_rng_full(
                        frontier_ids, frontier_nodes, n, table.table, next_ids, next_src
                    )
                )
            else:
                survivors = int(
                    kernels.sweep_rng(
                        frontier_ids, frontier_nodes, n, table.table, next_ids, next_src
                    )
                )
            table.size += survivors
            if survivors == 0:
                break
            frontier_ids = next_ids[:survivors]
            frontier_nodes = next_src[:survivors]
            layer_ids.append(frontier_ids)
            layer_nodes.append(frontier_nodes)
            continue
        if fully_active:
            live_edges = int(kernels.degree_sum(frontier_nodes, csr.offsets))
        else:
            live_edges = int(
                kernels.count_live(frontier_nodes, csr.offsets, csr.nodes, active)
            )
        if live_edges == 0:
            break
        # The layer's single bulk draw — same call, same L, same stream
        # as the vectorized reference.
        flips = rng.random(live_edges)
        table.reserve(live_edges)
        next_ids = np.empty(live_edges, dtype=np.int64)
        next_src = np.empty(live_edges, dtype=np.int64)
        if fully_active:
            survivors = int(
                kernels.sweep_full(
                    frontier_ids,
                    frontier_nodes,
                    csr.offsets,
                    csr.nodes,
                    csr.probs,
                    flips,
                    n,
                    table.table,
                    next_ids,
                    next_src,
                )
            )
        else:
            survivors = int(
                kernels.sweep(
                    frontier_ids,
                    frontier_nodes,
                    csr.offsets,
                    csr.nodes,
                    csr.probs,
                    active,
                    flips,
                    n,
                    table.table,
                    next_ids,
                    next_src,
                )
            )
        table.size += survivors
        if survivors == 0:
            break
        # Slice views, not copies: the buffers are layer-fresh, so the
        # next round never overwrites them.
        frontier_ids = next_ids[:survivors]
        frontier_nodes = next_src[:survivors]
        layer_ids.append(frontier_ids)
        layer_nodes.append(frontier_nodes)

    return _finalize(kernels, layer_ids, layer_nodes, count)


def generate_layered(view: ResidualGraph, roots: np.ndarray, rng, kernels):
    """Compiled-backend RR-batch generation (reverse BFS over in-CSR)."""
    from repro.sampling.engine import RRBatch

    base = view.base
    n = base.n
    csr = prepare_csr(*base.in_csr(), capabilities=kernels.capabilities)
    active = _as_uint8_mask(view.active_mask)
    count = roots.shape[0]

    live = view.active_mask[roots]
    frontier_ids = np.arange(count, dtype=np.int64)[live]
    frontier_nodes = roots[live].astype(np.int64, copy=False)
    offsets, nodes = _coin_sweep(
        kernels, csr, active, frontier_ids, frontier_nodes, n, count, rng,
        fully_active=view.num_active == n,
    )
    return RRBatch(
        offsets=offsets,
        nodes=nodes,
        num_active_nodes=view.num_active,
        n=n,
    )


def simulate_layered(view: ResidualGraph, seeds: np.ndarray, count: int, rng, kernels):
    """Compiled-backend forward IC simulation (out-CSR, shared seeds)."""
    from repro.diffusion.mc_engine import MCBatch

    base = view.base
    n = base.n
    csr = prepare_csr(*base.out_csr(), capabilities=kernels.capabilities)
    active = _as_uint8_mask(view.active_mask)

    frontier_ids = np.repeat(np.arange(count, dtype=np.int64), seeds.size)
    frontier_nodes = np.tile(seeds, count)
    offsets, nodes = _coin_sweep(
        kernels, csr, active, frontier_ids, frontier_nodes, n, count, rng,
        fully_active=view.num_active == n,
    )
    return MCBatch(offsets=offsets, nodes=nodes, n=n)


def replay_layered(view: ResidualGraph, seeds: np.ndarray, live: np.ndarray, kernels):
    """Compiled-backend deterministic live-edge replay (no randomness)."""
    from repro.diffusion.mc_engine import MCBatch

    base = view.base
    n = base.n
    m = base.m
    count = int(live.shape[0])
    csr = prepare_csr(*base.out_csr(), capabilities=kernels.capabilities)
    active = _as_uint8_mask(view.active_mask)
    live_u8 = _as_uint8_mask(live)

    frontier_ids = np.repeat(np.arange(count, dtype=np.int64), seeds.size)
    frontier_nodes = np.tile(seeds, count)
    kernels = _bound(kernels, csr, active)
    layer_ids = [frontier_ids]
    layer_nodes = [frontier_nodes]
    table = _HashSet(kernels, frontier_ids.shape[0])
    if frontier_ids.size:
        table.insert_distinct(frontier_ids * n + frontier_nodes)

    while frontier_nodes.size:
        total = int(kernels.degree_sum(frontier_nodes, csr.offsets))
        if total == 0:
            break
        table.reserve(total)
        next_ids = np.empty(total, dtype=np.int64)
        next_nodes = np.empty(total, dtype=np.int64)
        survivors = int(
            kernels.replay_advance(
                frontier_ids,
                frontier_nodes,
                csr.offsets,
                csr.nodes,
                active,
                live_u8,
                m,
                n,
                table.table,
                next_ids,
                next_nodes,
            )
        )
        table.size += survivors
        if survivors == 0:
            break
        frontier_ids = next_ids[:survivors]
        frontier_nodes = next_nodes[:survivors]
        layer_ids.append(frontier_ids)
        layer_nodes.append(frontier_nodes)

    offsets, nodes = _finalize(kernels, layer_ids, layer_nodes, count)
    return MCBatch(offsets=offsets, nodes=nodes, n=n)
