"""The kernel registry: named backends for the three hot kernels.

Every compute backend of the library registers a
:class:`KernelBackend` — a ``(generate_batch, simulate_batch,
replay_batch)`` triple under a name — and every caller reaches an
implementation exclusively through :func:`resolve_backend` +
:func:`get_backend`.  That indirection is what makes new backends
(numba, the cffi/C ``"native"`` backend, a future CuPy path) drop-in:
``sampling/engine.py``, ``diffusion/mc_engine.py``, the pools and the
service never name an implementation directly.

Contracts
---------
* **Determinism** — every registered backend consumes the *identical*
  RNG coin stream as the ``"vectorized"`` reference (bulk ``rng.random``
  draws per frontier layer, residual filter before the flips) and
  produces bit-for-bit identical batches.  ``resolve_backend("auto")``
  may therefore pick any available backend without perturbing results.
* **Defaults** — ``backend=None`` resolves through the ``REPRO_BACKEND``
  environment variable and falls back to ``"vectorized"`` (the MC entry
  points resolve through ``REPRO_MC_BACKEND`` with default ``"python"``,
  their historical sequential loop); no knobs set keeps every historical
  RNG stream bit-for-bit.
* **Optionality** — compiled backends are optional extras.  An
  unavailable backend stays *registered* (so error messages can name
  it) but :func:`get_backend` raises an actionable
  :class:`~repro.utils.exceptions.ValidationError`, and ``"auto"``
  silently falls back to the fastest backend that is importable.

Capability flags (:class:`KernelCapabilities`) describe what a backend
can consume: ``uint32_csr`` backends read the mmap'd ``uint32`` node
arrays of ``.rgx`` graphs in place, others receive an int64 copy from
:func:`prepare_csr` — the single place the uint32→int64 cast lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.env import read_env
from repro.utils.exceptions import ValidationError

#: Environment variable consulted when a caller leaves ``backend`` unset.
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: The resolve-time wildcard: pick the fastest available backend.
AUTO = "auto"


@dataclass(frozen=True)
class KernelCapabilities:
    """What a kernel backend can consume / guarantee.

    ``uint32_csr``
        The kernels read ``uint32`` node arrays (mmap'd ``.rgx`` CSR)
        directly; when ``False``, :func:`prepare_csr` hands the backend
        an int64 copy instead.
    ``residual_masks``
        The kernels honour residual ``active`` masks (every shipped
        backend does; the flag exists so a future restricted backend can
        be skipped by ``"auto"`` resolution on residual views).
    ``compiled``
        The backend runs machine code rather than NumPy/Python and
        benefits from a one-off :func:`warm_up` per process.
    """

    uint32_csr: bool = False
    residual_masks: bool = True
    compiled: bool = False


@dataclass(frozen=True)
class KernelBackend:
    """A loaded backend: the three kernel entry points plus metadata.

    ``generate_batch(view, roots, rng)`` grows one RR batch (reverse
    BFS), ``simulate_batch(view, seeds, count, rng)`` runs forward IC
    cascades, ``replay_batch(view, seeds, live)`` replays precomputed
    live-edge worlds deterministically.  All three receive pre-validated
    arguments from their entry points in :mod:`repro.sampling.engine` /
    :mod:`repro.diffusion.mc_engine`.
    """

    name: str
    capabilities: KernelCapabilities
    generate_batch: Callable
    simulate_batch: Callable
    replay_batch: Callable
    warm_up: Callable[[], None] = field(default=lambda: None)


class _Registration:
    """Lazy registry slot: the backend module loads on first use."""

    __slots__ = ("name", "capabilities", "priority", "loader", "probe", "_backend")

    def __init__(self, name, capabilities, priority, loader, probe):
        self.name = name
        self.capabilities = capabilities
        self.priority = priority
        self.loader = loader
        self.probe = probe
        self._backend: Optional[KernelBackend] = None

    def unavailable_reason(self) -> Optional[str]:
        if self._backend is not None:
            return None
        if self.probe is None:
            return None
        return self.probe()

    def load(self) -> KernelBackend:
        if self._backend is None:
            self._backend = self.loader()
        return self._backend


_REGISTRY: Dict[str, _Registration] = {}

#: Names whose :func:`warm_up` already ran in this process (the once-
#: per-worker memo: pool shards call ``warm_up`` per task, compile once).
_WARMED: set = set()


def register_backend(
    name: str,
    loader: Callable[[], KernelBackend],
    capabilities: KernelCapabilities,
    priority: int = 0,
    probe: Optional[Callable[[], Optional[str]]] = None,
) -> None:
    """Register ``loader`` under ``name`` (idempotent re-registration).

    ``priority`` orders ``"auto"`` resolution (higher wins among
    available backends).  ``probe`` returns ``None`` when the backend
    can load, else a human-readable reason (shown by the error an
    explicit request for an unavailable backend raises).
    """
    key = str(name).strip().lower()
    _REGISTRY[key] = _Registration(key, capabilities, int(priority), loader, probe)


def registered_backends() -> Tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_REGISTRY)


def available_backends() -> Tuple[str, ...]:
    """Registered backends whose probe reports them loadable."""
    return tuple(
        name
        for name, reg in _REGISTRY.items()
        if reg.unavailable_reason() is None
    )


def backend_priority(name: str) -> int:
    """The ``"auto"``-resolution priority of a registered backend."""
    return _registration(name).priority


def backend_capabilities(name: str) -> KernelCapabilities:
    """The declared capabilities of a registered backend (no load)."""
    return _registration(name).capabilities


def _choices() -> str:
    return ", ".join(list(_REGISTRY) + [AUTO])


def _registration(name: str) -> _Registration:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown backend {name!r}; registered backends: {_choices()}"
        ) from None


def resolve_backend(
    backend: Optional[str] = None,
    env_var: str = BACKEND_ENV_VAR,
    default: str = "vectorized",
) -> str:
    """Resolve a backend request to a concrete registered name.

    * an explicit value wins; ``None`` falls back to ``env_var``
      (``REPRO_BACKEND`` for the sampling/kernel knob,
      ``REPRO_MC_BACKEND`` for the Monte-Carlo strategy knob), then to
      ``default`` — so defaults keep the exact historical streams;
    * ``"auto"`` picks the highest-priority *available* backend (all
      backends are bit-for-bit identical, so this is stream-safe);
    * an unknown name raises the shared error listing every registered
      backend; a known-but-unavailable name raises the probe's reason
      (e.g. how to install the ``[fast]`` extra).
    """
    source = None
    if backend is None:
        backend = read_env(env_var)
        if backend is None:
            backend = default
        else:
            source = env_var
    name = str(backend).strip().lower()
    if name == AUTO:
        ranked = sorted(
            (reg for reg in _REGISTRY.values() if reg.unavailable_reason() is None),
            key=lambda reg: reg.priority,
            reverse=True,
        )
        if not ranked:
            raise ValidationError(
                "no kernel backend is available (registry is empty)"
            )
        return ranked[0].name
    if name not in _REGISTRY:
        origin = f" (from {source})" if source else ""
        raise ValidationError(
            f"unknown backend {backend!r}{origin}; "
            f"registered backends: {_choices()}"
        )
    reason = _REGISTRY[name].unavailable_reason()
    if reason is not None:
        origin = f" (from {source})" if source else ""
        raise ValidationError(
            f"backend {name!r}{origin} is registered but not available: "
            f"{reason}; use backend='auto' to pick the fastest available "
            f"backend automatically"
        )
    return name


def get_backend(backend: Optional[str] = None, **resolve_kwargs) -> KernelBackend:
    """Load the backend ``resolve_backend`` picks for ``backend``."""
    name = resolve_backend(backend, **resolve_kwargs)
    return _registration(name).load()


def warm_up(backend: str) -> None:
    """Run a backend's one-off per-process warm-up exactly once.

    Compiled backends pay their JIT/dlopen cost here; pool workers call
    this per task but the memo makes every call after the first a set
    lookup — warm-up happens once per worker, not once per shard.
    """
    name = resolve_backend(backend)
    if name in _WARMED:
        return
    _registration(name).load().warm_up()
    _WARMED.add(name)


# --------------------------------------------------------------------- #
# CSR preparation (the single home of the uint32 -> int64 cast)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class PreparedCSR:
    """A CSR triple prepared for one backend's capabilities.

    ``offsets`` is always int64; ``nodes`` keeps its storage dtype
    (mmap'd ``uint32`` for ``.rgx`` graphs) when the backend declared
    ``uint32_csr`` support, and is an int64 copy otherwise.  Gathered
    node-id slices go through :meth:`gather` — the one place the
    uint32→int64 upcast happens, so every backend (and future ones)
    inherits it instead of scattering ``.astype`` calls.
    """

    offsets: np.ndarray
    nodes: np.ndarray
    probs: np.ndarray

    def gather(self, edge_idx: np.ndarray) -> np.ndarray:
        """Node ids at ``edge_idx`` as int64 (no copy when already int64)."""
        return self.nodes[edge_idx].astype(np.int64, copy=False)


def prepare_csr(
    offsets: np.ndarray,
    nodes: np.ndarray,
    probs: np.ndarray,
    capabilities: Optional[KernelCapabilities] = None,
) -> PreparedCSR:
    """Adapt a raw CSR triple to what ``capabilities`` can consume.

    Backends that cannot read ``uint32`` node arrays (none of the
    shipped ones — the flag exists for future backends and for tests)
    receive an int64 copy upfront; everyone else reads the storage
    arrays in place and upcasts per-gather through
    :meth:`PreparedCSR.gather`.
    """
    offsets = np.asarray(offsets)
    if offsets.dtype != np.int64:
        offsets = offsets.astype(np.int64)
    nodes = np.asarray(nodes)
    if capabilities is not None and not capabilities.uint32_csr:
        nodes = nodes.astype(np.int64, copy=False)
    probs = np.asarray(probs)
    if probs.dtype != np.float64:
        probs = probs.astype(np.float64)
    return PreparedCSR(offsets=offsets, nodes=nodes, probs=probs)
