"""The ``"numba"`` backend: ``@njit``-compiled per-layer kernels.

Importing this module requires numba (the ``repro[fast]`` extra); the
registry gates the import behind a probe so the base install never pays
for it and ``"auto"`` silently falls back when numba is absent.

The kernels mirror :mod:`repro.kernels.native_backend` one-for-one and
plug into the same layered driver: bulk RNG draws stay in NumPy, the
compiled code does the residual-filtered live-edge count, the fused
coin-flip sweep (strict ``flip < prob`` with open-addressing
insert-if-absent dedup), fused live-edge replay, and the stable
counting sort — so the output is bit-for-bit identical to
``"vectorized"``.  Numba's dispatch
specializes each kernel per argument dtype, which covers both int64
in-RAM CSR arrays and mmap'd ``uint32`` ``.rgx`` arrays without
separate entry points; :meth:`NumbaKernels.warm_up` pre-compiles both
specializations once per process (pool workers warm up through the
registry memo, once per worker rather than per shard).
"""

from __future__ import annotations

import numpy as np
from numba import njit

from repro.kernels import layered
from repro.kernels.registry import KernelBackend, KernelCapabilities

CAPABILITIES = KernelCapabilities(uint32_csr=True, residual_masks=True, compiled=True)

_MIX = np.uint64(0x9E3779B97F4A7C15)


@njit(cache=True, nogil=True)
def _slot(key, mask):
    h = np.uint64(key) * _MIX
    return (h ^ (h >> np.uint64(32))) & mask


@njit(cache=True, nogil=True)
def _insert(table, mask, key):
    slot = _slot(key, mask)
    while True:
        cur = table[slot]
        if cur == key:
            return False
        if cur == -1:
            table[slot] = key
            return True
        slot = (slot + np.uint64(1)) & mask


@njit(cache=True, nogil=True)
def _degree_sum(fnodes, offsets):
    total = np.int64(0)
    for f in range(fnodes.shape[0]):
        node = fnodes[f]
        total += offsets[node + 1] - offsets[node]
    return total


@njit(cache=True, nogil=True)
def _count_live(fnodes, offsets, nodes, active):
    live_edges = np.int64(0)
    for f in range(fnodes.shape[0]):
        node = fnodes[f]
        for e in range(offsets[node], offsets[node + 1]):
            live_edges += active[np.int64(nodes[e])]
    return live_edges


@njit(cache=True, nogil=True)
def _sweep(fids, fnodes, offsets, nodes, probs, active, flips, n, table, next_ids, next_src):
    mask = np.uint64(table.shape[0] - 1)
    survivors = 0
    coin = 0
    for f in range(fids.shape[0]):
        rr = fids[f]
        node = fnodes[f]
        for e in range(offsets[node], offsets[node + 1]):
            s = np.int64(nodes[e])
            if active[s]:
                if flips[coin] < probs[e]:
                    key = rr * n + s
                    if _insert(table, mask, key):
                        next_ids[survivors] = rr
                        next_src[survivors] = s
                        survivors += 1
                coin += 1
    return survivors


@njit(cache=True, nogil=True)
def _sweep_full(fids, fnodes, offsets, nodes, probs, flips, n, table, next_ids, next_src):
    mask = np.uint64(table.shape[0] - 1)
    survivors = 0
    coin = 0
    for f in range(fids.shape[0]):
        rr = fids[f]
        node = fnodes[f]
        for e in range(offsets[node], offsets[node + 1]):
            if flips[coin] < probs[e]:
                s = np.int64(nodes[e])
                key = rr * n + s
                if _insert(table, mask, key):
                    next_ids[survivors] = rr
                    next_src[survivors] = s
                    survivors += 1
            coin += 1
    return survivors


@njit(cache=True, nogil=True)
def _insert_keys(keys, table):
    mask = np.uint64(table.shape[0] - 1)
    for i in range(keys.shape[0]):
        _insert(table, mask, keys[i])


@njit(cache=True, nogil=True)
def _rehash(old_table, new_table):
    mask = np.uint64(new_table.shape[0] - 1)
    for i in range(old_table.shape[0]):
        key = old_table[i]
        if key != -1:
            _insert(new_table, mask, key)


@njit(cache=True, nogil=True)
def _replay_advance(
    fids, fnodes, offsets, targets, active, live, m, n, table, next_ids, next_nodes
):
    mask = np.uint64(table.shape[0] - 1)
    survivors = 0
    for f in range(fids.shape[0]):
        sim = fids[f]
        node = fnodes[f]
        row = sim * m
        for e in range(offsets[node], offsets[node + 1]):
            t = np.int64(targets[e])
            if active[t] and live[row + e]:
                key = sim * n + t
                if _insert(table, mask, key):
                    next_ids[survivors] = sim
                    next_nodes[survivors] = t
                    survivors += 1
    return survivors


@njit(cache=True, nogil=True)
def _group_pairs(ids, nodes, count, offsets, out_nodes, cursor):
    for i in range(ids.shape[0]):
        offsets[ids[i] + 1] += 1
    for c in range(count):
        offsets[c + 1] += offsets[c]
    for c in range(count):
        cursor[c] = offsets[c]
    for i in range(ids.shape[0]):
        rr = ids[i]
        out_nodes[cursor[rr]] = nodes[i]
        cursor[rr] += 1


class NumbaKernels:
    """The jitted primitive set the layered driver drives."""

    capabilities = CAPABILITIES

    @staticmethod
    def degree_sum(fnodes, offsets):
        return _degree_sum(fnodes, offsets)

    @staticmethod
    def count_live(fnodes, offsets, nodes, active):
        return _count_live(fnodes, offsets, nodes, active)

    @staticmethod
    def sweep(fids, fnodes, offsets, nodes, probs, active, flips, n, table, next_ids, next_src):
        return _sweep(
            fids, fnodes, offsets, nodes, probs, active, flips, n, table, next_ids, next_src
        )

    @staticmethod
    def sweep_full(fids, fnodes, offsets, nodes, probs, flips, n, table, next_ids, next_src):
        return _sweep_full(
            fids, fnodes, offsets, nodes, probs, flips, n, table, next_ids, next_src
        )

    @staticmethod
    def insert_keys(keys, table):
        _insert_keys(keys, table)

    @staticmethod
    def rehash(old_table, new_table):
        _rehash(old_table, new_table)

    @staticmethod
    def replay_advance(
        fids, fnodes, offsets, targets, active, live, m, n, table, next_ids, next_nodes
    ):
        return _replay_advance(
            fids,
            fnodes,
            offsets,
            targets,
            active,
            live.reshape(-1),
            m,
            n,
            table,
            next_ids,
            next_nodes,
        )

    @staticmethod
    def group_pairs(ids, nodes, count):
        offsets = np.zeros(count + 1, dtype=np.int64)
        out_nodes = np.empty(ids.shape[0], dtype=np.int64)
        cursor = np.empty(max(count, 1), dtype=np.int64)
        _group_pairs(ids, nodes, count, offsets, out_nodes, cursor)
        return offsets, out_nodes


def warm_up() -> None:
    """Pre-compile every kernel for both node-array dtypes (i64 + u32)."""
    i64 = np.zeros(1, dtype=np.int64)
    f64 = np.zeros(1, dtype=np.float64)
    u8 = np.ones(2, dtype=np.uint8)
    offsets = np.zeros(3, dtype=np.int64)
    table = np.full(16, -1, dtype=np.int64)
    for node_dtype in (np.int64, np.uint32):
        nodes = np.zeros(1, dtype=node_dtype)
        _count_live(i64, offsets, nodes, u8)
        _sweep(i64, i64, offsets, nodes, f64, u8, f64, 2, table, i64.copy(), i64.copy())
        _sweep_full(i64, i64, offsets, nodes, f64, f64, 2, table, i64.copy(), i64.copy())
        _replay_advance(
            i64, i64, offsets, nodes, u8, u8, 1, 2, table, i64.copy(), i64.copy()
        )
    _degree_sum(i64, offsets)
    _insert_keys(i64, table.copy())
    _rehash(table, table.copy())
    NumbaKernels.group_pairs(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), 1)


def load() -> KernelBackend:
    """Registry loader: wire the jitted kernel set into the layered driver."""
    kernels = NumbaKernels()
    return KernelBackend(
        name="numba",
        capabilities=CAPABILITIES,
        generate_batch=lambda view, roots, rng: layered.generate_layered(
            view, roots, rng, kernels
        ),
        simulate_batch=lambda view, seeds, count, rng: layered.simulate_layered(
            view, seeds, count, rng, kernels
        ),
        replay_batch=lambda view, seeds, live: layered.replay_layered(
            view, seeds, live, kernels
        ),
        warm_up=warm_up,
    )
