"""Registry wrappers for the historical NumPy / pure-Python kernels.

``"vectorized"`` is the NumPy frontier-at-a-time engine — the executable
reference every other backend must match bit-for-bit.  ``"python"`` is
the deliberately naive loop-based specification of the RNG contract.
Both live in :mod:`repro.sampling.engine` / :mod:`repro.diffusion.
mc_engine`; this module only adapts them to the registry's kernel-triple
interface (imported lazily — the engines import the registry at module
load, so the reverse import happens strictly at call time).

Live-edge replay is deterministic (no coins), so both names share the
vectorized replay implementation: a ``backend="python"`` replay request
is simply the same sweep.
"""

from __future__ import annotations

from repro.kernels.registry import KernelBackend, KernelCapabilities

VECTORIZED_CAPABILITIES = KernelCapabilities(
    uint32_csr=True, residual_masks=True, compiled=False
)
PYTHON_CAPABILITIES = KernelCapabilities(
    uint32_csr=True, residual_masks=True, compiled=False
)


def _replay_vectorized(view, seeds, live):
    from repro.diffusion import mc_engine

    return mc_engine._replay_batch_vectorized(view, seeds, live)


def load_vectorized() -> KernelBackend:
    from repro.diffusion import mc_engine
    from repro.sampling import engine

    return KernelBackend(
        name="vectorized",
        capabilities=VECTORIZED_CAPABILITIES,
        generate_batch=engine._generate_batch_vectorized,
        simulate_batch=mc_engine._simulate_batch_vectorized,
        replay_batch=_replay_vectorized,
    )


def load_python() -> KernelBackend:
    from repro.diffusion import mc_engine
    from repro.sampling import engine

    return KernelBackend(
        name="python",
        capabilities=PYTHON_CAPABILITIES,
        generate_batch=engine._generate_batch_python,
        simulate_batch=mc_engine._simulate_batch_python,
        replay_batch=_replay_vectorized,
    )
