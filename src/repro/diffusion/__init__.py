"""Diffusion substrate: IC / LT simulation, realizations, spread estimation."""

from repro.diffusion.ic_model import (
    cascade_trace,
    observe_activation,
    simulate_ic,
    simulate_ic_spread,
)
from repro.diffusion.lt_model import simulate_lt, simulate_lt_spread, validate_lt_weights
from repro.diffusion.mc_engine import (
    MC_BACKEND_ENV_VAR,
    MCBatch,
    live_edge_reachable,
    merge_mc_batches,
    replay_live_edges,
    resolve_mc_backend,
    simulate_ic_batch,
)
from repro.diffusion.realization import (
    BaseRealization,
    LazyRealization,
    Realization,
    batch_realization_spreads,
    sample_realizations,
)
from repro.diffusion.spread import (
    MAX_EXACT_EDGES,
    exact_expected_spread,
    exact_marginal_spread,
    expected_spread_lower_bound,
    monte_carlo_marginal_spread,
    monte_carlo_spread,
    monte_carlo_spread_samples,
)

__all__ = [
    "BaseRealization",
    "LazyRealization",
    "MAX_EXACT_EDGES",
    "MC_BACKEND_ENV_VAR",
    "MCBatch",
    "Realization",
    "batch_realization_spreads",
    "cascade_trace",
    "exact_expected_spread",
    "exact_marginal_spread",
    "expected_spread_lower_bound",
    "live_edge_reachable",
    "merge_mc_batches",
    "monte_carlo_marginal_spread",
    "monte_carlo_spread",
    "monte_carlo_spread_samples",
    "observe_activation",
    "replay_live_edges",
    "resolve_mc_backend",
    "sample_realizations",
    "simulate_ic",
    "simulate_ic_batch",
    "simulate_ic_spread",
    "simulate_lt",
    "simulate_lt_spread",
    "validate_lt_weights",
]
