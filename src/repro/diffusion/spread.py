"""Expected-spread computation: exact enumeration and Monte-Carlo estimation.

Computing the exact expected spread ``E[I(S)]`` under the IC model is
#P-hard (Chen et al., 2010), which is precisely why the paper distinguishes
the *oracle model* (expected spreads available in ``O(1)``) from the *noise
model* (spreads estimated by sampling).  This module provides

* :func:`exact_expected_spread` — exact value by enumerating all ``2^m``
  possible worlds.  Only feasible for the tiny graphs used in unit tests
  and in the Fig. 1 worked example, and guarded accordingly.
* :func:`monte_carlo_spread` — the classical unbiased estimator obtained by
  averaging IC simulations.
* conditional variants used by the oracle-model algorithm ADG, where the
  quantity of interest is the *marginal* spread ``E[I_G(u | S)]`` on a
  residual graph.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.diffusion.ic_model import simulate_ic
from repro.diffusion.realization import Realization
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

#: Maximum number of edges for which possible-world enumeration is allowed.
MAX_EXACT_EDGES = 20


def exact_expected_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    max_edges: int = MAX_EXACT_EDGES,
) -> float:
    """Exact ``E[I(S)]`` by enumerating every possible world.

    Enumerates only the edges whose both endpoints are active in the
    residual view, so the guard applies to the *residual* edge count.
    Raises :class:`ValidationError` when that count exceeds ``max_edges``.
    """
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    seeds = [int(s) for s in seeds if view.is_active(int(s))]
    if not seeds:
        return 0.0

    sources, targets, probs = base.edge_array()
    relevant = np.nonzero(view.active_mask[sources] & view.active_mask[targets])[0]
    if relevant.size > max_edges:
        raise ValidationError(
            f"exact enumeration requires <= {max_edges} residual edges, "
            f"got {relevant.size}; use monte_carlo_spread instead"
        )

    total = 0.0
    for pattern in itertools.product([False, True], repeat=relevant.size):
        probability = 1.0
        live_mask = np.zeros(base.m, dtype=bool)
        for flag, edge_id in zip(pattern, relevant.tolist()):
            p = probs[edge_id]
            probability *= p if flag else (1.0 - p)
            live_mask[edge_id] = flag
        if probability == 0.0:
            continue
        world = Realization(base, live_mask)
        total += probability * world.spread(seeds, view)
    return total


def monte_carlo_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    num_simulations: int = 1000,
    random_state: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``E[I(S)]`` from ``num_simulations`` cascades."""
    if num_simulations <= 0:
        raise ValidationError("num_simulations must be positive")
    rng = ensure_rng(random_state)
    seeds = list(seeds)
    if not seeds:
        return 0.0
    total = 0
    for _ in range(num_simulations):
        total += len(simulate_ic(graph, seeds, rng))
    return total / num_simulations


def monte_carlo_spread_samples(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Sequence[int],
    num_simulations: int,
    random_state: RandomState = None,
) -> np.ndarray:
    """Return the individual spread samples (for variance / CI analysis)."""
    rng = ensure_rng(random_state)
    samples = np.empty(num_simulations, dtype=np.float64)
    for index in range(num_simulations):
        samples[index] = len(simulate_ic(graph, seeds, rng))
    return samples


def exact_marginal_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    node: int,
    conditioning_set: Iterable[int],
    max_edges: int = MAX_EXACT_EDGES,
) -> float:
    """Exact conditional marginal spread ``E[I_G(u | S)] = E[I(S ∪ {u})] − E[I(S)]``."""
    conditioning = set(int(v) for v in conditioning_set)
    if node in conditioning:
        return 0.0
    with_node = exact_expected_spread(graph, conditioning | {int(node)}, max_edges)
    without_node = exact_expected_spread(graph, conditioning, max_edges) if conditioning else 0.0
    return with_node - without_node


def monte_carlo_marginal_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    node: int,
    conditioning_set: Iterable[int],
    num_simulations: int = 1000,
    random_state: RandomState = None,
) -> float:
    """Monte-Carlo estimate of ``E[I_G(u | S)]`` using common random numbers.

    The same realization is used for the "with" and "without" cascades,
    which greatly reduces the variance of the difference.
    """
    rng = ensure_rng(random_state)
    conditioning = [int(v) for v in conditioning_set]
    node = int(node)
    if node in conditioning:
        return 0.0
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    total = 0.0
    for _ in range(num_simulations):
        world = Realization.sample(base, rng)
        with_node = world.spread(conditioning + [node], view)
        without_node = world.spread(conditioning, view) if conditioning else 0
        total += with_node - without_node
    return total / num_simulations


def expected_spread_lower_bound(
    samples: np.ndarray,
    confidence: float = 0.95,
) -> float:
    """One-sided lower confidence bound on the mean spread (Hoeffding style).

    Used by the cost-model construction: the paper sets ``c(T)`` equal to a
    lower bound ``E_l[I(T)]`` of the target set's expected spread.
    ``samples`` are individual spread draws bounded by ``n`` (handled by the
    caller via normalisation); here we apply the normal-approximation bound
    which is accurate for the sample sizes the experiments use, clipped at
    the sample minimum to stay conservative on tiny sample counts.
    """
    if samples.size == 0:
        return 0.0
    mean = float(samples.mean())
    if samples.size == 1:
        return mean
    std_error = float(samples.std(ddof=1)) / np.sqrt(samples.size)
    # 95% one-sided normal quantile by default.
    z_values = {0.9: 1.2816, 0.95: 1.6449, 0.99: 2.3263}
    z = z_values.get(round(confidence, 2), 1.6449)
    lower = mean - z * std_error
    return max(lower, float(samples.min()), 0.0)
