"""Expected-spread computation: exact enumeration and Monte-Carlo estimation.

Computing the exact expected spread ``E[I(S)]`` under the IC model is
#P-hard (Chen et al., 2010), which is precisely why the paper distinguishes
the *oracle model* (expected spreads available in ``O(1)``) from the *noise
model* (spreads estimated by sampling).  This module provides

* :func:`exact_expected_spread` — exact value by enumerating all ``2^m``
  possible worlds.  Only feasible for the tiny graphs used in unit tests
  and in the Fig. 1 worked example, and guarded accordingly.  The worlds
  are evaluated in chunks through the batched live-edge replay engine
  (:func:`repro.diffusion.mc_engine.replay_live_edges`) with the pattern
  probabilities computed vectorized, instead of the historical per-pattern
  Python inner loop.
* :func:`monte_carlo_spread` — the classical unbiased estimator obtained by
  averaging IC simulations.
* conditional variants used by the oracle-model algorithm ADG, where the
  quantity of interest is the *marginal* spread ``E[I_G(u | S)]`` on a
  residual graph.

Backends
--------
The Monte-Carlo estimators accept ``backend=``, resolved through
:func:`repro.diffusion.mc_engine.resolve_mc_backend` (the
``REPRO_MC_BACKEND`` environment variable fills in when the caller passes
``None``):

* ``"python"`` (default) — the historical per-cascade loop; defaults keep
  the exact historical RNG streams bit-for-bit.
* any other registered kernel backend (``"vectorized"``, ``"numba"``,
  ``"native"``, or ``"auto"`` for the fastest available) — the batched
  engine of :mod:`repro.diffusion.mc_engine`: all cascades of a query
  advance frontier-at-a-time with that kernel, optionally sharded across
  a :class:`~repro.parallel.pool.SamplingPool` (``n_jobs`` / ``pool``)
  under the library-wide determinism contract (output independent of the
  worker count and of the kernel choice).  For
  :func:`monte_carlo_marginal_spread` the batched engines consume the
  *same* realization stream as the historical loop (one ``rng.random(m)``
  row per simulation), so every backend returns bit-for-bit identical
  estimates.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.diffusion.ic_model import simulate_ic
from repro.diffusion.mc_engine import (
    MCBatch,
    live_chunk_rows,
    replay_live_edges,
    resolve_mc_backend,
    sample_live_chunks,
    simulate_ic_batch,
)
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

#: Maximum number of edges for which possible-world enumeration is allowed.
MAX_EXACT_EDGES = 20


def exact_expected_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    max_edges: int = MAX_EXACT_EDGES,
) -> float:
    """Exact ``E[I(S)]`` by enumerating every possible world.

    Enumerates only the edges whose both endpoints are active in the
    residual view, so the guard applies to the *residual* edge count.
    Raises :class:`ValidationError` when that count exceeds ``max_edges``.

    Pattern probabilities are computed for all ``2^r`` worlds with one
    vectorized pass per edge (same multiplication order as the historical
    scalar loop, so the products are bit-for-bit identical), and the
    per-world spreads are evaluated in chunks by the batched live-edge
    replay engine instead of one Python BFS per world.
    """
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    seeds = [int(s) for s in seeds if view.is_active(int(s))]
    if not seeds:
        return 0.0

    sources, targets, probs = base.edge_array()
    relevant = np.nonzero(view.active_mask[sources] & view.active_mask[targets])[0]
    if relevant.size > max_edges:
        raise ValidationError(
            f"exact enumeration requires <= {max_edges} residual edges, "
            f"got {relevant.size}; use monte_carlo_spread instead"
        )

    num_edges = int(relevant.size)
    num_worlds = 1 << num_edges
    rel_probs = probs[relevant]
    rel_comp = 1.0 - rel_probs

    # Probability of every bit pattern at once.  Bit ``num_edges - 1 - k``
    # of the pattern index is edge ``k``'s live flag, which reproduces the
    # historical ``itertools.product([False, True], ...)`` enumeration
    # order (and the per-pattern multiplication order, factor by factor).
    indices = np.arange(num_worlds, dtype=np.int64)
    pattern_probs = np.ones(num_worlds, dtype=np.float64)
    for k in range(num_edges):
        bit = (indices >> (num_edges - 1 - k)) & 1
        pattern_probs *= np.where(bit, rel_probs[k], rel_comp[k])

    # Worlds of probability zero (some edge has p == 1 flagged blocked)
    # contribute nothing; skip their BFS like the historical loop did.
    feasible = np.nonzero(pattern_probs > 0.0)[0]
    shifts = (num_edges - 1 - np.arange(num_edges, dtype=np.int64))

    total = 0.0
    chunk = live_chunk_rows(int(feasible.size), base.m)
    for start in range(0, int(feasible.size), chunk):
        world_ids = feasible[start : start + chunk]
        live = np.zeros((world_ids.size, base.m), dtype=bool)
        if num_edges:
            flags = ((world_ids[:, None] >> shifts[None, :]) & 1).astype(bool)
            live[:, relevant] = flags
        spreads = replay_live_edges(view, seeds, live)
        total += float(np.dot(pattern_probs[world_ids], spreads))
    return total


def monte_carlo_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    num_simulations: int = 1000,
    random_state: RandomState = None,
    backend: Optional[str] = None,
    n_jobs: Optional[int] = None,
    pool: Optional["SamplingPool"] = None,
) -> float:
    """Monte-Carlo estimate of ``E[I(S)]`` from ``num_simulations`` cascades.

    ``backend="python"`` (the resolved default) runs the historical
    per-cascade loop on the exact historical RNG stream; ``"vectorized"``
    runs the whole query as one batched sweep, sharded across ``n_jobs``
    workers (or a held ``pool``) when requested — the batched result is
    bit-for-bit independent of the worker count.
    """
    if num_simulations <= 0:
        raise ValidationError("num_simulations must be positive")
    rng = ensure_rng(random_state)
    seeds = list(seeds)
    if not seeds:
        return 0.0
    resolved = resolve_mc_backend(backend)
    if resolved == "python":
        total = 0
        for _ in range(num_simulations):
            total += len(simulate_ic(graph, seeds, rng))
        return total / num_simulations
    batch = _dispatch_simulate(
        graph, seeds, num_simulations, rng, n_jobs, pool, resolved
    )
    return batch.total_spread() / num_simulations


def monte_carlo_spread_samples(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Sequence[int],
    num_simulations: int,
    random_state: RandomState = None,
    backend: Optional[str] = None,
    n_jobs: Optional[int] = None,
    pool: Optional["SamplingPool"] = None,
) -> np.ndarray:
    """Return the individual spread samples (for variance / CI analysis)."""
    rng = ensure_rng(random_state)
    resolved = resolve_mc_backend(backend)
    if resolved == "python":
        samples = np.empty(num_simulations, dtype=np.float64)
        for index in range(num_simulations):
            samples[index] = len(simulate_ic(graph, seeds, rng))
        return samples
    batch = _dispatch_simulate(
        graph, list(seeds), num_simulations, rng, n_jobs, pool, resolved
    )
    return batch.spreads().astype(np.float64)


def exact_marginal_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    node: int,
    conditioning_set: Iterable[int],
    max_edges: int = MAX_EXACT_EDGES,
) -> float:
    """Exact conditional marginal spread ``E[I_G(u | S)] = E[I(S ∪ {u})] − E[I(S)]``."""
    conditioning = set(int(v) for v in conditioning_set)
    if node in conditioning:
        return 0.0
    with_node = exact_expected_spread(graph, conditioning | {int(node)}, max_edges)
    without_node = exact_expected_spread(graph, conditioning, max_edges) if conditioning else 0.0
    return with_node - without_node


def monte_carlo_marginal_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    node: int,
    conditioning_set: Iterable[int],
    num_simulations: int = 1000,
    random_state: RandomState = None,
    backend: Optional[str] = None,
) -> float:
    """Monte-Carlo estimate of ``E[I_G(u | S)]`` using common random numbers.

    The same realization is used for the "with" and "without" cascades,
    which greatly reduces the variance of the difference.  The vectorized
    backend draws the realizations in bulk rows (the identical stream the
    per-realization loop consumes) and replays both cascades of every
    realization through the batched live-edge engine, so the two backends
    return bit-for-bit identical estimates.
    """
    from repro.diffusion.realization import Realization

    rng = ensure_rng(random_state)
    conditioning = [int(v) for v in conditioning_set]
    node = int(node)
    if node in conditioning:
        return 0.0
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    resolved = resolve_mc_backend(backend)
    if resolved == "python":
        total = 0.0
        for _ in range(num_simulations):
            world = Realization.sample(base, rng)
            with_node = world.spread(conditioning + [node], view)
            without_node = world.spread(conditioning, view) if conditioning else 0
            total += with_node - without_node
        return total / num_simulations

    total_int = 0
    for live in sample_live_chunks(rng, base.out_csr()[2], num_simulations):
        with_spreads = replay_live_edges(
            view, conditioning + [node], live, backend=resolved
        )
        total_int += int(with_spreads.sum())
        if conditioning:
            total_int -= int(
                replay_live_edges(view, conditioning, live, backend=resolved).sum()
            )
    return total_int / num_simulations


def expected_spread_lower_bound(
    samples: np.ndarray,
    confidence: float = 0.95,
) -> float:
    """One-sided lower confidence bound on the mean spread (Hoeffding style).

    Used by the cost-model construction: the paper sets ``c(T)`` equal to a
    lower bound ``E_l[I(T)]`` of the target set's expected spread.
    ``samples`` are individual spread draws bounded by ``n`` (handled by the
    caller via normalisation); here we apply the normal-approximation bound
    which is accurate for the sample sizes the experiments use, clipped at
    the sample minimum to stay conservative on tiny sample counts.
    """
    if samples.size == 0:
        return 0.0
    mean = float(samples.mean())
    if samples.size == 1:
        return mean
    std_error = float(samples.std(ddof=1)) / np.sqrt(samples.size)
    # 95% one-sided normal quantile by default.
    z_values = {0.9: 1.2816, 0.95: 1.6449, 0.99: 2.3263}
    z = z_values.get(round(confidence, 2), 1.6449)
    lower = mean - z * std_error
    return max(lower, float(samples.min()), 0.0)


def _dispatch_simulate(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Sequence[int],
    count: int,
    random_state: RandomState,
    n_jobs: Optional[int],
    pool: Optional["SamplingPool"],
    backend: str = "vectorized",
) -> MCBatch:
    """Route one batched MC query through the pool / sharded / plain engine."""
    from repro.parallel.pool import parallel_simulate_ic_batch, resolve_jobs

    if pool is not None:
        return pool.simulate(graph, seeds, count, random_state, backend=backend)
    jobs = resolve_jobs(n_jobs)
    if jobs is not None:
        return parallel_simulate_ic_batch(
            graph, seeds, count, random_state, backend=backend, n_jobs=jobs
        )
    return simulate_ic_batch(graph, seeds, count, random_state, backend=backend)
