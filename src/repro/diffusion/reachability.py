"""Reachability primitives over live-edge subgraphs.

These are the BFS building blocks shared by forward diffusion, realization
spread computation, and reverse-reachable (RR) set sampling.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Set

from repro.graphs.residual import ResidualGraph


def forward_reachable(
    view: ResidualGraph,
    sources: Iterable[int],
    edge_is_live: Callable[[int], bool],
) -> Set[int]:
    """Nodes reachable from ``sources`` following live outgoing edges."""
    reached: Set[int] = set()
    queue: deque[int] = deque()
    for source in sources:
        source = int(source)
        if view.is_active(source) and source not in reached:
            reached.add(source)
            queue.append(source)
    while queue:
        node = queue.popleft()
        targets, _, edge_ids = view.out_neighbors(node)
        for target, edge_id in zip(targets.tolist(), edge_ids.tolist()):
            if target not in reached and edge_is_live(edge_id):
                reached.add(target)
                queue.append(target)
    return reached


def reverse_reachable(
    view: ResidualGraph,
    root: int,
    edge_is_live: Callable[[int], bool],
) -> Set[int]:
    """Nodes that can reach ``root`` following live edges backwards.

    This is exactly the definition of a reverse-reachable (RR) set rooted at
    ``root`` once ``edge_is_live`` flips each incoming edge with its
    probability (Borgs et al., 2014).
    """
    root = int(root)
    if not view.is_active(root):
        return set()
    reached: Set[int] = {root}
    queue: deque[int] = deque([root])
    while queue:
        node = queue.popleft()
        sources, _, edge_ids = view.in_neighbors(node)
        for source, edge_id in zip(sources.tolist(), edge_ids.tolist()):
            if source not in reached and edge_is_live(edge_id):
                reached.add(source)
                queue.append(source)
    return reached


def is_reachable(
    view: ResidualGraph,
    source: int,
    target: int,
    edge_is_live: Callable[[int], bool],
) -> bool:
    """Whether ``target`` is reachable from ``source`` through live edges."""
    source, target = int(source), int(target)
    if not (view.is_active(source) and view.is_active(target)):
        return False
    if source == target:
        return True
    reached: Set[int] = {source}
    queue: deque[int] = deque([source])
    while queue:
        node = queue.popleft()
        targets, _, edge_ids = view.out_neighbors(node)
        for neighbor, edge_id in zip(targets.tolist(), edge_ids.tolist()):
            if neighbor in reached or not edge_is_live(edge_id):
                continue
            if neighbor == target:
                return True
            reached.add(neighbor)
            queue.append(neighbor)
    return False
