"""Forward simulation of the Independent Cascade (IC) model.

The IC process (Kempe et al., 2003) starts with a seed set active at time 0.
Each newly activated node gets exactly one chance to activate each of its
inactive out-neighbours, succeeding independently with the edge's
probability.  The process stops when no new activation happens.

Simulating the process directly is equivalent to sampling a realization and
taking the live-edge reachable set, but a direct simulation only flips the
coins it actually needs, which is what :func:`simulate_ic` does.

:func:`simulate_ic` runs one cascade at a time and is the executable
specification of the per-cascade RNG stream; Monte-Carlo callers that need
many cascades per query should go through the batched engine
(:mod:`repro.diffusion.mc_engine`), which runs a whole batch as one
frontier-at-a-time sweep and reproduces this module's stream exactly for a
batch of one.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Set

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.rng import RandomState, ensure_rng


def simulate_ic(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    random_state: RandomState = None,
) -> Set[int]:
    """Run one IC cascade from ``seeds`` and return the activated node set.

    ``graph`` may be a full graph or a residual view; propagation never
    enters inactive nodes.  Seeds outside the residual graph are ignored.
    The returned set includes the (active) seeds.
    """
    rng = ensure_rng(random_state)
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph

    activated: Set[int] = set()
    frontier: deque[int] = deque()
    for seed in seeds:
        seed = int(seed)
        if view.is_active(seed) and seed not in activated:
            activated.add(seed)
            frontier.append(seed)

    while frontier:
        node = frontier.popleft()
        targets, probs, _ = view.out_neighbors(node)
        if targets.size == 0:
            continue
        flips = rng.random(targets.size) < probs
        for target, success in zip(targets.tolist(), flips.tolist()):
            if success and target not in activated:
                activated.add(target)
                frontier.append(target)
    return activated


def simulate_ic_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    random_state: RandomState = None,
) -> int:
    """Spread (number of activated nodes) of one IC cascade."""
    return len(simulate_ic(graph, seeds, random_state))


def cascade_trace(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    random_state: RandomState = None,
) -> list[Set[int]]:
    """Run one IC cascade and return the newly activated nodes per time step.

    ``result[0]`` is the (active) seed set, ``result[t]`` the nodes first
    activated during step ``t``.  Useful for visualisation and for testing
    the discrete-time semantics of the model.
    """
    rng = ensure_rng(random_state)
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph

    activated: Set[int] = set()
    current: Set[int] = set()
    for seed in seeds:
        seed = int(seed)
        if view.is_active(seed):
            current.add(seed)
            activated.add(seed)
    steps: list[Set[int]] = [set(current)]

    while current:
        next_wave: Set[int] = set()
        for node in current:
            targets, probs, _ = view.out_neighbors(node)
            if targets.size == 0:
                continue
            flips = rng.random(targets.size) < probs
            for target, success in zip(targets.tolist(), flips.tolist()):
                if success and target not in activated:
                    activated.add(target)
                    next_wave.add(target)
        if next_wave:
            steps.append(next_wave)
        current = next_wave
    return steps


def observe_activation(
    realization,
    seed: int,
    residual: Optional[ResidualGraph] = None,
) -> Set[int]:
    """Adaptive feedback: the node set ``A(u)`` activated by a single seed.

    This is the observation step of the adaptive algorithms (line 10 of
    Algorithm 2): once ``seed`` is committed, the advertiser observes every
    node it activates under the true (hidden) realization, restricted to the
    current residual graph.
    """
    return realization.activated_by([seed], residual)
