"""Linear Threshold (LT) model simulation.

The paper's analysis is stated for the IC model but the TPM formulation only
requires a monotone submodular spread function; the LT model (Kempe et al.,
2003) is the other classical choice and is provided here as an extension so
users can study adaptive profit maximization under it.  Edge probabilities
are interpreted as influence *weights*; for the spread function to remain
submodular the incoming weights of each node must sum to at most 1, which
is automatically satisfied by the weighted-cascade assignment
``p(u, v) = 1/indeg(v)``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Set

import numpy as np

from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng


def validate_lt_weights(graph: ProbabilisticGraph, tolerance: float = 1e-9) -> None:
    """Raise :class:`ValidationError` unless incoming weights sum to <= 1 per node."""
    totals = np.zeros(graph.n)
    _, targets, probs = graph.edge_array()
    np.add.at(totals, targets, probs)
    worst = float(totals.max()) if graph.n else 0.0
    if worst > 1.0 + tolerance:
        raise ValidationError(
            "LT model requires sum of incoming weights <= 1 per node; "
            f"maximum observed is {worst:.4f}"
        )


def simulate_lt(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    random_state: RandomState = None,
    check_weights: bool = False,
) -> Set[int]:
    """Run one Linear Threshold cascade and return the activated node set.

    Each node draws a threshold uniformly from ``[0, 1]``; it activates once
    the total weight of its activated in-neighbours reaches the threshold.
    """
    rng = ensure_rng(random_state)
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    if check_weights:
        validate_lt_weights(base)

    thresholds = rng.random(base.n)
    accumulated = np.zeros(base.n)

    activated: Set[int] = set()
    frontier: deque[int] = deque()
    for seed in seeds:
        seed = int(seed)
        if view.is_active(seed) and seed not in activated:
            activated.add(seed)
            frontier.append(seed)

    while frontier:
        node = frontier.popleft()
        targets, probs, _ = view.out_neighbors(node)
        for target, weight in zip(targets.tolist(), probs.tolist()):
            if target in activated:
                continue
            accumulated[target] += weight
            if accumulated[target] >= thresholds[target]:
                activated.add(target)
                frontier.append(target)
    return activated


def simulate_lt_spread(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    random_state: RandomState = None,
) -> int:
    """Spread of one LT cascade."""
    return len(simulate_lt(graph, seeds, random_state))


def sample_lt_live_edges(
    graph: ProbabilisticGraph, random_state: RandomState = None
) -> np.ndarray:
    """Sample the LT model's live-edge realization.

    Under the triggering-set interpretation of LT, each node picks at most
    one incoming edge, edge ``(u, v)`` with probability ``p(u, v)`` (and no
    edge with the remaining probability).  The returned boolean mask is
    indexed by edge id and can be wrapped in
    :class:`repro.diffusion.realization.Realization`.
    """
    rng = ensure_rng(random_state)
    live = np.zeros(graph.m, dtype=bool)
    for node in range(graph.n):
        sources, probs, edge_ids = graph.in_neighbors(node)
        if sources.size == 0:
            continue
        draw = rng.random()
        cumulative = np.cumsum(probs)
        position = int(np.searchsorted(cumulative, draw, side="right"))
        if position < sources.size:
            live[edge_ids[position]] = True
    return live
