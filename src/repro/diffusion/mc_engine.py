"""Batched, vectorized forward simulation of the Independent Cascade model.

This module is the forward-side twin of :mod:`repro.sampling.engine`.  The
historical Monte-Carlo paths (`monte_carlo_spread`, the MC spread oracle,
sample-based cost estimation, policy replay) run one cascade at a time
through a per-node Python ``deque`` loop; with ``num_simulations=1000`` per
spread query that loop dominates the figure/table experiment drivers.  The
engine here grows *all* cascades of a batch simultaneously:

1. the (shared) seed set is resolved once — inactive seeds are ignored,
   duplicates keep their first occurrence, exactly as in
   :func:`repro.diffusion.ic_model.simulate_ic`;
2. the forward BFS advances frontier-at-a-time across the whole batch —
   one expansion gathers the outgoing CSR slices of every frontier node of
   every simulation at once, applies the residual ``active`` mask as a
   single vectorized filter, and draws all coin flips of the wave with one
   ``rng.random`` call;
3. activated ``(sim_id, node)`` pairs are deduplicated with sorted int64
   keys (``np.searchsorted``), no per-simulation Python ``set`` lookups.

The result is an :class:`MCBatch`: the activated sets of all simulations in
flat CSR-like form ``(offsets, nodes)`` — per-simulation spreads are
``np.diff(offsets)``, and full activation masks are available on demand.

Backends
--------
``simulate_ic_batch`` accepts ``backend="vectorized"`` (default) or
``backend="python"``.  The Python backend is a loop-based reference
implementation of *exactly the same algorithm*: it consumes the same
coin-flip stream in the same frontier order, so for any shared seed the two
backends produce bit-for-bit identical batches (pinned by
``tests/diffusion/test_mc_engine.py``).  Because numpy ``Generator.random``
streams concatenate across calls, a batch of ``count=1`` consumes *exactly*
the stream of one historical :func:`simulate_ic` cascade — the historical
per-cascade loop is the ``B = 1`` special case of the engine's RNG
contract.  A batch of ``B > 1`` simulations interleaves the waves of all
cascades and therefore draws a different (equally distributed) stream than
``B`` sequential cascades; that is why the Monte-Carlo entry points in
:mod:`repro.diffusion.spread` default to ``backend="python"`` (the
historical sequential loop) and treat the batched engine as an opt-in.

Live-edge replay
----------------
:func:`replay_live_edges` is the deterministic sibling: instead of flipping
coins it follows precomputed live/blocked edge states (one boolean row per
realization), which batches `Realization.activated_by`-style policy replay
over many realizations — and powers the vectorized possible-world
enumeration of :func:`repro.diffusion.spread.exact_expected_spread`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro import kernels
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.engine import flat_slice_indices
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

#: The historical reference backend names (the full set of recognised
#: values — including compiled backends — lives in the kernel registry).
BACKENDS = ("vectorized", "python")

#: Environment variable consulted when a caller leaves ``backend`` unset.
MC_BACKEND_ENV_VAR = "REPRO_MC_BACKEND"


def resolve_mc_backend(backend: Optional[str] = None) -> str:
    """Resolve a Monte-Carlo backend request to a concrete kernel name.

    A thin wrapper over :func:`repro.kernels.resolve_backend` — one
    shared parser and one shared error message listing every registered
    backend — with the Monte-Carlo knob's historical semantics:

    * an explicit value wins (any registered backend, or ``"auto"`` for
      the fastest available one);
    * ``None`` falls back to the ``REPRO_MC_BACKEND`` environment variable;
    * ``None`` with no environment override resolves to ``"python"`` — the
      historical per-cascade loop, so defaults keep the exact historical
      RNG streams bit-for-bit.

    ``"python"`` selects the sequential per-cascade strategy at the
    :mod:`repro.diffusion.spread` entry points; every other name runs
    the batched engine with that kernel backend.
    """
    return kernels.resolve_backend(
        backend, env_var=MC_BACKEND_ENV_VAR, default="python"
    )


#: Soft cap on floats materialised per live-edge chunk (~32 MB of draws).
_CHUNK_FLOATS = 4_000_000


def live_chunk_rows(count: int, m: int) -> int:
    """Realization rows per chunk so a ``(rows, m)`` draw stays ~32 MB.

    Chunking the simulation axis never changes an estimate: bulk rows of
    ``rng.random((rows, m))`` consume the generator's stream row-major,
    exactly like ``rows`` sequential ``rng.random(m)`` calls.
    """
    return max(1, min(count, _CHUNK_FLOATS // max(m, 1)))


def sample_live_chunks(rng: np.random.Generator, probs: np.ndarray, count: int):
    """Yield ``(rows, m)`` boolean live-edge matrices for ``count`` realizations.

    The single place that encodes the bulk realization stream: row ``i``
    of the concatenated chunks equals the live mask the historical loop
    samples with its ``i``-th ``rng.random(m)`` call (``probs`` is the
    edge-id-ordered probability array, ``base.out_csr()[2]``).  Every
    common-random-numbers consumer — ``monte_carlo_marginal_spread`` and
    the Monte-Carlo oracle's batched queries — iterates these chunks so
    the stream contract lives in exactly one function.
    """
    m = int(probs.shape[0])
    chunk = live_chunk_rows(count, m)
    for start in range(0, count, chunk):
        rows = min(chunk, count - start)
        if m:
            yield rng.random((rows, m)) < probs[None, :]
        else:
            yield np.zeros((rows, 0), dtype=bool)


@dataclass(frozen=True)
class MCBatch:
    """A batch of IC cascades in flat CSR-like form.

    ``nodes[offsets[i]:offsets[i + 1]]`` are the nodes activated by
    simulation ``i`` in discovery (BFS) order, seeds first.  ``n`` is the
    node-id universe of the base graph.
    """

    offsets: np.ndarray
    nodes: np.ndarray
    n: int

    def __len__(self) -> int:
        return int(self.offsets.shape[0] - 1)

    @property
    def num_simulations(self) -> int:
        """Number of cascades in the batch."""
        return len(self)

    def spreads(self) -> np.ndarray:
        """Per-simulation spreads ``I_i`` (int64 array of length B)."""
        return np.diff(self.offsets)

    def total_spread(self) -> int:
        """Sum of all per-simulation spreads."""
        return int(self.nodes.shape[0])

    def activated_at(self, index: int) -> np.ndarray:
        """Nodes activated by simulation ``index`` (read-only view)."""
        return self.nodes[self.offsets[index] : self.offsets[index + 1]]

    def to_sets(self) -> List[Set[int]]:
        """Materialise the batch as a list of Python sets (compat shim)."""
        offsets = self.offsets
        node_list = self.nodes.tolist()
        return [
            set(node_list[offsets[i] : offsets[i + 1]]) for i in range(len(self))
        ]

    def activation_matrix(self) -> np.ndarray:
        """Dense ``(B, n)`` boolean activation mask (allocates B·n bytes)."""
        count = len(self)
        matrix = np.zeros((count, self.n), dtype=bool)
        sim_ids = np.repeat(np.arange(count, dtype=np.int64), self.spreads())
        matrix[sim_ids, self.nodes] = True
        return matrix

    def slice(self, start: int, stop: int) -> "MCBatch":
        """Sub-batch holding simulations ``start:stop`` (offsets rebased)."""
        start, stop = int(start), int(stop)
        if not 0 <= start <= stop <= len(self):
            raise ValidationError(
                f"slice [{start}, {stop}) out of range for {len(self)} simulations"
            )
        lo, hi = self.offsets[start], self.offsets[stop]
        return MCBatch(
            offsets=self.offsets[start : stop + 1] - lo,
            nodes=self.nodes[lo:hi],
            n=self.n,
        )


def merge_mc_batches(batches: Sequence[MCBatch]) -> MCBatch:
    """Concatenate flat cascade batches without re-walking any cascade.

    The merge step of the parallel MC path (:meth:`repro.parallel.pool.
    SamplingPool.simulate`): worker shards come back as independent
    ``(offsets, nodes)`` pairs and are stitched together in shard order by
    shifting each shard's offsets by the running total.
    """
    if not batches:
        raise ValidationError("merge_mc_batches requires at least one batch")
    if len(batches) == 1:
        return batches[0]
    first = batches[0]
    offsets_parts = [first.offsets]
    nodes_parts = [first.nodes]
    shift = int(first.offsets[-1])
    for batch in batches[1:]:
        offsets_parts.append(batch.offsets[1:] + shift)
        nodes_parts.append(batch.nodes)
        shift += int(batch.offsets[-1])
    return MCBatch(
        offsets=np.concatenate(offsets_parts),
        nodes=np.concatenate(nodes_parts),
        n=max(batch.n for batch in batches),
    )


def _empty_batch(count: int, n: int) -> MCBatch:
    return MCBatch(
        offsets=np.zeros(count + 1, dtype=np.int64),
        nodes=np.zeros(0, dtype=np.int64),
        n=n,
    )


def _resolve_seeds(view: ResidualGraph, seeds: Iterable[int]) -> np.ndarray:
    """Active seeds in first-occurrence order (the ``simulate_ic`` contract).

    Inactive seeds are ignored and duplicates keep their first occurrence —
    exactly what the historical per-cascade loop does when it fills its
    initial deque.
    """
    resolved: List[int] = []
    seen: Set[int] = set()
    for seed in seeds:
        seed = int(seed)
        if seed not in seen and view.is_active(seed):
            seen.add(seed)
            resolved.append(seed)
    return np.asarray(resolved, dtype=np.int64)


def simulate_ic_batch(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    count: int,
    random_state: RandomState = None,
    backend: Optional[str] = None,
) -> MCBatch:
    """Run ``count`` independent IC cascades from ``seeds`` as one batch.

    Parameters
    ----------
    graph:
        Graph or residual view to simulate on; propagation never enters
        inactive nodes and inactive seeds are ignored.
    seeds:
        Seed set shared by every simulation of the batch.
    count:
        Number of independent cascades.
    random_state:
        Seed / generator; every backend consumes it identically.
    backend:
        Kernel backend name resolved through the registry
        (:func:`repro.kernels.resolve_backend`): ``None`` honours
        ``REPRO_BACKEND`` and defaults to ``"vectorized"``; ``"auto"``
        picks the fastest available backend — every backend is
        bit-for-bit identical, so the choice never changes the batch.
    """
    if count < 0:
        raise ValidationError(f"count must be >= 0, got {count}")
    spec = kernels.get_backend(backend)
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    if count == 0:
        return _empty_batch(0, view.n)
    seed_array = _resolve_seeds(view, seeds)
    if seed_array.size == 0:
        return _empty_batch(count, view.n)
    rng = ensure_rng(random_state)
    return spec.simulate_batch(view, seed_array, count, rng)


# --------------------------------------------------------------------- #
# vectorized backend
# --------------------------------------------------------------------- #


def _finalize_batch(
    member_sim: List[np.ndarray],
    member_nodes: List[np.ndarray],
    count: int,
    n: int,
) -> MCBatch:
    all_sim = np.concatenate(member_sim)
    all_nodes = np.concatenate(member_nodes)
    grouping = np.argsort(all_sim, kind="stable")
    sizes = np.bincount(all_sim, minlength=count)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return MCBatch(offsets=offsets, nodes=all_nodes[grouping], n=n)


def _frontier_sweep(
    view: ResidualGraph, seeds: np.ndarray, count: int, traverse
) -> MCBatch:
    """The shared frontier-at-a-time sweep of the coin-flip and replay paths.

    ``traverse(expand_sim, edge_idx, targets)`` decides which gathered
    edges propagate this wave and returns the surviving ``(sims, targets)``
    pair — coin flips for :func:`simulate_ic_batch`, live-mask lookups for
    :func:`replay_live_edges`.  Everything else (CSR gather, sorted-key
    dedup against earlier waves, first-occurrence dedup within a wave,
    flat-batch assembly) lives here exactly once, so the two modes cannot
    drift apart.
    """
    n = view.n
    # prepare_csr centralizes the uint32 -> int64 handling of mmap'd
    # ``.rgx`` node arrays: gathered slices upcast through ``csr.gather``.
    csr = kernels.prepare_csr(
        *view.base.out_csr(),
        capabilities=kernels.backend_capabilities("vectorized"),
    )
    out_offsets = csr.offsets

    # Every simulation starts from the same (active, deduplicated) seeds.
    frontier_sim = np.repeat(np.arange(count, dtype=np.int64), seeds.size)
    frontier_nodes = np.tile(seeds, count)

    # Sorted (sim_id * n + node) keys of everything activated so far.
    visited_keys = np.sort(frontier_sim * n + frontier_nodes)
    member_sim = [frontier_sim]
    member_nodes = [frontier_nodes]

    while frontier_nodes.size:
        starts = out_offsets[frontier_nodes]
        degrees = out_offsets[frontier_nodes + 1] - starts
        if int(degrees.sum()) == 0:
            break
        edge_idx = flat_slice_indices(starts, degrees)
        expand_sim = np.repeat(frontier_sim, degrees)
        targets = csr.gather(edge_idx)
        expand_sim, targets = traverse(expand_sim, edge_idx, targets)
        if targets.size == 0:
            break
        keys = expand_sim * n + targets
        # Drop pairs activated in earlier waves ...
        pos = np.searchsorted(visited_keys, keys)
        pos_clipped = np.minimum(pos, visited_keys.size - 1)
        fresh = visited_keys[pos_clipped] != keys
        keys = keys[fresh]
        targets = targets[fresh]
        expand_sim = expand_sim[fresh]
        if keys.size == 0:
            break
        # ... and duplicates within this wave, keeping the first occurrence.
        unique_keys, first_idx = np.unique(keys, return_index=True)
        order = np.sort(first_idx)
        frontier_nodes = targets[order]
        frontier_sim = expand_sim[order]
        visited_keys = np.concatenate([visited_keys, unique_keys])
        visited_keys.sort(kind="stable")
        member_sim.append(frontier_sim)
        member_nodes.append(frontier_nodes)

    return _finalize_batch(member_sim, member_nodes, count, n)


def _simulate_batch_vectorized(
    view: ResidualGraph, seeds: np.ndarray, count: int, rng: np.random.Generator
) -> MCBatch:
    active = view.active_mask
    out_probs = view.base.out_csr()[2]

    def traverse(expand_sim, edge_idx, targets):
        # Residual filter first: coins are only flipped for edges whose
        # target is still active — the per-node reference filters through
        # `out_neighbors` before flipping, and so does `simulate_ic`.
        keep = active[targets]
        targets = targets[keep]
        probs = out_probs[edge_idx[keep]]
        expand_sim = expand_sim[keep]
        if targets.size == 0:
            return expand_sim, targets
        flips = rng.random(targets.size) < probs
        return expand_sim[flips], targets[flips]

    return _frontier_sweep(view, seeds, count, traverse)


# --------------------------------------------------------------------- #
# python reference backend
# --------------------------------------------------------------------- #


def _simulate_batch_python(
    view: ResidualGraph, seeds: np.ndarray, count: int, rng: np.random.Generator
) -> MCBatch:
    """Loop-based reference with the exact RNG contract of the fast path.

    Kept intentionally naive (Python lists, sets and scalar loops): its only
    job is to be obviously correct so the vectorized backend can be checked
    against it seed-for-seed.
    """
    n = view.n
    seed_list = seeds.tolist()
    members: List[List[int]] = [list(seed_list) for _ in range(count)]
    activated: List[Set[int]] = [set(seed_list) for _ in range(count)]
    frontier: List[tuple] = [
        (sim, seed) for sim in range(count) for seed in seed_list
    ]

    while frontier:
        # Gather the wave's live out-edges in frontier order, then flip all
        # coins with one bulk draw (same stream as the vectorized backend).
        layer: List[tuple] = []
        for sim, node in frontier:
            targets, probs, _ = view.out_neighbors(node)
            for target, prob in zip(targets.tolist(), probs.tolist()):
                layer.append((sim, target, prob))
        if not layer:
            break
        flips = rng.random(len(layer))
        next_frontier: List[tuple] = []
        for (sim, target, prob), flip in zip(layer, flips.tolist()):
            if flip < prob and target not in activated[sim]:
                activated[sim].add(target)
                members[sim].append(target)
                next_frontier.append((sim, target))
        frontier = next_frontier

    sizes = np.asarray([len(member) for member in members], dtype=np.int64)
    offsets = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    flat = [node for member in members for node in member]
    return MCBatch(
        offsets=offsets,
        nodes=np.asarray(flat, dtype=np.int64),
        n=n,
    )


# --------------------------------------------------------------------- #
# deterministic live-edge replay (realizations / possible worlds)
# --------------------------------------------------------------------- #


def _replay_batch_vectorized(
    view: ResidualGraph, seeds: np.ndarray, live: np.ndarray
) -> MCBatch:
    """Vectorized replay kernel: one deterministic sweep per world row."""
    active = view.active_mask

    def traverse(expand_sim, edge_idx, targets):
        keep = active[targets] & live[expand_sim, edge_idx]
        return expand_sim[keep], targets[keep]

    return _frontier_sweep(view, seeds, int(live.shape[0]), traverse)


def replay_live_edges(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    live: np.ndarray,
    return_members: bool = False,
    backend: Optional[str] = None,
) -> np.ndarray | MCBatch:
    """Batched live-edge reachability: one cascade per precomputed world.

    ``live`` is a ``(B, m)`` boolean matrix — row ``b`` is the live/blocked
    state of every edge (indexed by edge id) under realization ``b``.  All
    rows share the same seed set; traversal is restricted to the active
    nodes of ``graph`` exactly like :meth:`repro.diffusion.realization.
    BaseRealization.activated_by`.  Deterministic (no randomness): replaying
    the same worlds always yields the same activated sets, whichever
    registered kernel ``backend`` runs the sweep.

    Returns the per-realization spreads (int64 array of length ``B``), or
    the full :class:`MCBatch` of activated sets when ``return_members``.
    """
    view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
    base = view.base
    n = view.n
    spec = kernels.get_backend(backend)
    live = np.asarray(live, dtype=bool)
    if live.ndim != 2:
        raise ValidationError(
            f"live must be a (B, m) boolean matrix, got shape {live.shape}"
        )
    count = int(live.shape[0])
    if live.shape[1] != base.m:
        raise ValidationError(
            f"live must have one column per edge ({base.m}), got {live.shape[1]}"
        )
    seed_array = _resolve_seeds(view, seeds)
    if count == 0 or seed_array.size == 0:
        empty = _empty_batch(count, n)
        return empty if return_members else empty.spreads()

    batch = spec.replay_batch(view, seed_array, live)
    return batch if return_members else batch.spreads()


def live_edge_reachable(
    graph: ProbabilisticGraph | ResidualGraph,
    seeds: Iterable[int],
    live_mask: np.ndarray,
) -> np.ndarray:
    """Activated nodes of *one* realization (vectorized single-world replay).

    The fast path behind :meth:`repro.diffusion.realization.Realization.
    activated_by`: a one-row :func:`replay_live_edges` sweep returning the
    activated node ids in discovery order.
    """
    batch = replay_live_edges(
        graph, seeds, np.asarray(live_mask, dtype=bool)[None, :], return_members=True
    )
    return batch.nodes
