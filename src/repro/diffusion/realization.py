"""Realizations (possible worlds) of a probabilistic graph.

A *realization* ``φ`` fixes the outcome of every edge's coin flip: each edge
``e`` is *live* with probability ``p(e)`` and *blocked* otherwise
(Section II-A of the paper).  Under a fixed realization the spread of a seed
set ``S`` is simply the set of nodes reachable from ``S`` through live
edges.

Two implementations are provided:

* :class:`Realization` — eagerly samples the state of all ``m`` edges.  This
  is simple and fast for the proxy graph sizes used in the benchmarks.
* :class:`LazyRealization` — samples edge states on first use and memoises
  them.  Adaptive seeding only ever inspects edges reachable from the chosen
  seeds, so laziness saves a lot of work on large graphs while remaining
  *consistent*: once flipped, an edge's state never changes.

Both classes expose the same interface and both are deterministic functions
of the provided random generator, so experiments are reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence, Set

import numpy as np

from repro.diffusion.mc_engine import live_edge_reachable, replay_live_edges
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng


class BaseRealization:
    """Interface shared by eager and lazy realizations."""

    #: The graph this realization belongs to.
    graph: ProbabilisticGraph

    def is_live(self, edge_id: int) -> bool:
        """Whether the directed edge with ``edge_id`` is live under φ."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # spread under the realization
    # ------------------------------------------------------------------ #

    def activated_by(
        self,
        seeds: Iterable[int],
        residual: Optional[ResidualGraph] = None,
    ) -> Set[int]:
        """Nodes activated when ``seeds`` are selected under this realization.

        Traversal is restricted to the *active* nodes of ``residual`` when
        given (the adaptive feedback of the paper: already-activated nodes
        neither propagate nor count again).  Seeds that are inactive in the
        residual graph are ignored.

        Returns the full activated set **including** the seeds themselves.
        """
        view = as_residual(self.graph) if residual is None else residual
        activated: Set[int] = set()
        queue: deque[int] = deque()
        for seed in seeds:
            seed = int(seed)
            if view.is_active(seed) and seed not in activated:
                activated.add(seed)
                queue.append(seed)
        while queue:
            node = queue.popleft()
            targets, _, edge_ids = view.out_neighbors(node)
            for target, edge_id in zip(targets.tolist(), edge_ids.tolist()):
                if target in activated:
                    continue
                if self.is_live(edge_id):
                    activated.add(target)
                    queue.append(target)
        return activated

    def spread(
        self,
        seeds: Iterable[int],
        residual: Optional[ResidualGraph] = None,
    ) -> int:
        """``I_φ(S)``: the number of nodes activated by ``seeds`` under φ."""
        return len(self.activated_by(seeds, residual))


class Realization(BaseRealization):
    """Eagerly sampled possible world: one Bernoulli flip per edge."""

    __slots__ = ("graph", "_live")

    def __init__(self, graph: ProbabilisticGraph, live_edges: np.ndarray) -> None:
        live = np.asarray(live_edges, dtype=bool)
        if live.shape != (graph.m,):
            raise ValueError(
                f"live_edges must have shape ({graph.m},), got {live.shape}"
            )
        self.graph = graph
        self._live = live

    @classmethod
    def sample(
        cls, graph: ProbabilisticGraph, random_state: RandomState = None
    ) -> "Realization":
        """Sample a realization: edge ``e`` is live with probability ``p(e)``.

        Reads the graph's cached probability array directly — sampling
        needs only the probability column, not the three ``O(m)`` copies
        ``edge_array()`` materializes.  The draws are unchanged, so
        sampled worlds are bit-for-bit the historical ones.
        """
        rng = ensure_rng(random_state)
        probs = graph.edge_probabilities
        live = rng.random(graph.m) < probs if graph.m else np.zeros(0, dtype=bool)
        return cls(graph, live)

    @classmethod
    def from_live_edge_ids(
        cls, graph: ProbabilisticGraph, live_edge_ids: Iterable[int]
    ) -> "Realization":
        """Build a realization where exactly ``live_edge_ids`` are live.

        Useful for constructing the specific possible world of a worked
        example (e.g. the Fig. 1 scenario) in tests.
        """
        live = np.zeros(graph.m, dtype=bool)
        ids = np.asarray(list(live_edge_ids), dtype=np.int64)
        if ids.size:
            live[ids] = True
        return cls(graph, live)

    def is_live(self, edge_id: int) -> bool:
        return bool(self._live[edge_id])

    def activated_by(
        self,
        seeds: Iterable[int],
        residual: Optional[ResidualGraph] = None,
    ) -> Set[int]:
        """Vectorized live-edge reachability (same result as the base loop).

        An eager realization holds the full live mask, so the activated set
        is one frontier-at-a-time sweep of the batched replay engine
        instead of a per-node Python BFS — the hot path of every adaptive
        session commit and of nonadaptive policy scoring.
        """
        view = as_residual(self.graph) if residual is None else residual
        reached = live_edge_reachable(view, seeds, self._live)
        return set(int(v) for v in reached)

    @property
    def live_mask(self) -> np.ndarray:
        """Boolean live/blocked mask indexed by edge id (copy-free view)."""
        return self._live

    @property
    def num_live_edges(self) -> int:
        """Number of live edges in this possible world."""
        return int(self._live.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Realization live={self.num_live_edges}/{self.graph.m}>"


class LazyRealization(BaseRealization):
    """Possible world whose edge flips are sampled on first inspection.

    The sampled states are memoised, so repeated queries are consistent —
    the defining property a realization needs for adaptive seeding, where
    the same edge may be examined in several iterations.

    Two sampling granularities:

    * ``batch_flip=False`` (default) — one Python-level Bernoulli draw per
      edge on first inspection, the exact historical stream.
    * ``batch_flip=True`` — on the first touch of any edge, the whole
      out-neighbour slice of its source node is flipped with a single
      vectorized draw and memoised.  Diffusion inspects edges source by
      source (a BFS pops a node, then examines all its out-edges), so
      batching converts ``out_degree`` generator calls into one array
      call while keeping per-edge memoized consistency.  Every edge is
      still an independent ``p(e)`` Bernoulli — the distribution over
      worlds is identical — but randomness is consumed in a different
      order, so the sampled world for a given seed differs from the
      per-edge mode (which is why the knob defaults to off).
    """

    __slots__ = ("graph", "_rng", "_states", "_batch_flip", "_live", "_flipped", "_num_sampled")

    def __init__(
        self,
        graph: ProbabilisticGraph,
        random_state: RandomState = None,
        batch_flip: bool = False,
    ) -> None:
        self.graph = graph
        self._rng = ensure_rng(random_state)
        self._batch_flip = bool(batch_flip)
        self._states: dict[int, bool] = {}
        self._live: Optional[np.ndarray] = None
        self._flipped: Optional[np.ndarray] = None
        self._num_sampled = 0

    def is_live(self, edge_id: int) -> bool:
        if self._batch_flip:
            return self._is_live_batched(edge_id)
        state = self._states.get(edge_id)
        if state is None:
            state = self._flip(edge_id)
            self._states[edge_id] = state
        return state

    def _is_live_batched(self, edge_id: int) -> bool:
        if self._live is None:
            self._live = np.zeros(self.graph.m, dtype=bool)
            self._flipped = np.zeros(self.graph.n, dtype=bool)
        source = int(self.graph.edge_sources[edge_id])
        if not self._flipped[source]:
            offsets, _, probs = self.graph.out_csr()
            start, end = int(offsets[source]), int(offsets[source + 1])
            self._live[start:end] = self._rng.random(end - start) < probs[start:end]
            self._flipped[source] = True
            self._num_sampled += end - start
        return bool(self._live[edge_id])

    def _flip(self, edge_id: int) -> bool:
        probability = self._edge_probability(edge_id)
        return bool(self._rng.random() < probability)

    def _edge_probability(self, edge_id: int) -> float:
        # Edge ids index the outgoing CSR directly.
        return float(self.graph.edge_probabilities[edge_id])

    @property
    def num_sampled_edges(self) -> int:
        """How many edge states have been materialised so far."""
        if self._batch_flip:
            return self._num_sampled
        return len(self._states)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<LazyRealization sampled={self.num_sampled_edges}/{self.graph.m}>"


def batch_realization_spreads(
    realizations: Sequence[Realization],
    seeds: Iterable[int],
    residual: Optional[ResidualGraph] = None,
) -> np.ndarray:
    """Spreads of one seed set under many eager realizations, in one sweep.

    Stacks the realizations' live masks into a ``(B, m)`` matrix and runs a
    single batched live-edge replay — the vectorized path the experiment
    runner uses to score a nonadaptively chosen seed set against all
    evaluation realizations at once.  The result is element-for-element
    identical to calling :meth:`BaseRealization.spread` per realization
    (replay is deterministic).  Requires *eager* :class:`Realization`
    objects (a :class:`LazyRealization` has no materialised live mask).
    """
    realizations = list(realizations)
    if not realizations:
        return np.zeros(0, dtype=np.int64)
    first_graph = realizations[0].graph
    for realization in realizations:
        if not isinstance(realization, Realization):
            raise ValidationError(
                "batch_realization_spreads requires eager Realization objects, "
                f"got {type(realization).__name__}"
            )
        # Strict identity: the batch replays every live mask against the
        # first graph's edge ids, so a merely equal-sized different graph
        # (allowed by the per-realization session loop, which traverses
        # each realization's own graph) would silently score wrong here.
        if realization.graph is not first_graph:
            raise ValidationError(
                "batch_realization_spreads requires all realizations to be "
                "sampled on the same graph object; score mixed-graph "
                "realizations with the per-realization loop instead"
            )
    graph = first_graph
    view = as_residual(graph) if residual is None else residual
    live = np.stack([realization.live_mask for realization in realizations])
    return replay_live_edges(view, seeds, live)


def sample_realizations(
    graph: ProbabilisticGraph,
    count: int,
    random_state: RandomState = None,
    lazy: bool = False,
    batch_flip: bool = False,
) -> list[BaseRealization]:
    """Sample ``count`` independent realizations of ``graph``.

    The paper's experiments average every algorithm over 20 sampled
    realizations (Section VI-A); this helper builds that family
    reproducibly.  ``batch_flip`` selects the vectorized flip granularity
    of :class:`LazyRealization` (ignored for eager realizations).
    """
    rng = ensure_rng(random_state)
    children = rng.spawn(count)
    if lazy:
        return [LazyRealization(graph, child, batch_flip=batch_flip) for child in children]
    return [Realization.sample(graph, child) for child in children]
