"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


def format_seconds(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_seconds(0.0123)
    '12.3ms'
    >>> format_seconds(75.0)
    '1m15.0s'
    """
    if seconds < 0:
        return f"-{format_seconds(-seconds)}"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:.1f}s"


@dataclass
class Timer:
    """Accumulating wall-clock timer, usable as a context manager.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed >= 0
    True
    """

    elapsed: float = 0.0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        """Start (or restart) the current measurement interval."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the current interval and return total elapsed seconds."""
        if self._started_at is not None:
            self.elapsed += time.perf_counter() - self._started_at
            self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """Whether an interval is currently open."""
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return format_seconds(self.elapsed)
