"""Small argument-validation helpers shared by the whole library."""

from __future__ import annotations

from typing import Any, Iterable

from repro.utils.exceptions import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive and return it."""
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str, allow_zero: bool = False) -> float:
    """Validate that ``value`` lies in ``(0, 1]`` (or ``[0, 1]``)."""
    lower_ok = value >= 0 if allow_zero else value > 0
    if not (lower_ok and value <= 1):
        bounds = "[0, 1]" if allow_zero else "(0, 1]"
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def require_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate ``low <= value <= high`` and return ``value``."""
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_node_ids(nodes: Iterable[int], n: int, name: str = "nodes") -> list[int]:
    """Validate that every element of ``nodes`` is a valid node id in ``[0, n)``."""
    result = []
    for node in nodes:
        node_int = int(node)
        if node_int < 0 or node_int >= n:
            raise ValidationError(
                f"{name} contains {node!r}, which is not a valid node id in [0, {n})"
            )
        result.append(node_int)
    return result


def require_type(value: Any, expected: type, name: str) -> Any:
    """Validate ``isinstance(value, expected)`` and return ``value``."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
    return value
