"""Random-number-generator helpers.

The library never touches ``numpy.random`` module-level state.  Every
function or class that needs randomness accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh OS entropy) and converts
it through :func:`ensure_rng`.  Components that need several independent
streams (for example one stream per Monte-Carlo realization) derive them via
:func:`spawn_rngs`, which uses ``Generator.spawn`` under the hood so the
streams are statistically independent and reproducible.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

#: Anything accepted where a source of randomness is required.
RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for fresh OS entropy, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing generator (which
        is returned unchanged).

    Examples
    --------
    >>> rng = ensure_rng(7)
    >>> rng2 = ensure_rng(7)
    >>> float(rng.random()) == float(rng2.random())
    True
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, np.random.SeedSequence):
        return np.random.default_rng(random_state)
    if random_state is None or isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(random_state)
    raise TypeError(
        "random_state must be None, an int, a SeedSequence or a Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from ``random_state``.

    The derived generators are reproducible: the same ``random_state`` always
    produces the same family of streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = ensure_rng(random_state)
    return list(rng.spawn(count))


def sample_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> np.ndarray:
    """Sample ``size`` distinct elements from ``population``.

    Thin wrapper over :meth:`numpy.random.Generator.choice` that tolerates
    ``size`` larger than the population by returning the whole population in
    a random order.
    """
    population = np.asarray(population)
    if size >= len(population):
        permuted = population.copy()
        rng.shuffle(permuted)
        return permuted
    return rng.choice(population, size=size, replace=False)


def coin_flips(rng: np.random.Generator, probabilities: Iterable[float]) -> np.ndarray:
    """Vectorised Bernoulli draws: one flip per probability."""
    probs = np.asarray(list(probabilities) if not isinstance(probabilities, np.ndarray) else probabilities)
    if probs.size == 0:
        return np.zeros(0, dtype=bool)
    return rng.random(probs.shape) < probs


def derive_seed(rng: np.random.Generator, upper: int = 2**31 - 1) -> int:
    """Draw a fresh integer seed from ``rng`` (useful for logging/repro)."""
    return int(rng.integers(0, upper))


def permutation(rng: np.random.Generator, items: Sequence[int]) -> list[int]:
    """Return a random permutation of ``items`` as a Python list."""
    order = np.asarray(items).copy()
    rng.shuffle(order)
    return [int(x) for x in order]


class ReproducibleStream:
    """A named family of RNG streams derived from one master seed.

    Experiments often need distinct but reproducible streams for distinct
    purposes ("realizations", "rr-sets", "costs", ...).  This helper maps a
    string key to a deterministic child generator.

    Examples
    --------
    >>> streams = ReproducibleStream(master_seed=1)
    >>> a = streams.get("realizations")
    >>> b = streams.get("rr-sets")
    >>> a is not b
    True
    >>> streams2 = ReproducibleStream(master_seed=1)
    >>> float(streams2.get("realizations").random()) == float(
    ...     ReproducibleStream(master_seed=1).get("realizations").random())
    True
    """

    def __init__(self, master_seed: Optional[int] = None) -> None:
        self._master_seed = master_seed
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> Optional[int]:
        """The seed this family was created from (``None`` = OS entropy)."""
        return self._master_seed

    def get(self, key: str) -> np.random.Generator:
        """Return the generator associated with ``key`` (cached)."""
        if key not in self._cache:
            entropy = [hash(key) & 0x7FFFFFFF]
            if self._master_seed is not None:
                entropy.append(self._master_seed)
            seq = np.random.SeedSequence(entropy)
            self._cache[key] = np.random.default_rng(seq)
        return self._cache[key]

    def fresh(self, key: str) -> np.random.Generator:
        """Return a brand new generator for ``key`` (reset the stream)."""
        self._cache.pop(key, None)
        return self.get(key)
