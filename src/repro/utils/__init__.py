"""Shared utilities: RNG management, validation, timing, and exceptions.

Every stochastic component of the library receives an explicit
:class:`numpy.random.Generator`.  The helpers in :mod:`repro.utils.rng`
standardise how such generators are created, seeded and split so that every
experiment in the repository is reproducible from a single integer seed.
"""

from repro.utils.exceptions import (
    ConfigurationError,
    GraphFormatError,
    ReproError,
    SamplingBudgetExceeded,
    ValidationError,
)
from repro.utils.rng import RandomState, ensure_rng, spawn_rngs
from repro.utils.timer import Timer, format_seconds
from repro.utils.validation import (
    require,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "ConfigurationError",
    "GraphFormatError",
    "RandomState",
    "ReproError",
    "SamplingBudgetExceeded",
    "Timer",
    "ValidationError",
    "ensure_rng",
    "format_seconds",
    "require",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "spawn_rngs",
]
