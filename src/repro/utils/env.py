"""One shared reader for the library's environment knobs.

Every ``REPRO_*`` environment variable is consulted through the helpers
here, so a malformed value fails the same way everywhere: a
:class:`~repro.utils.exceptions.ValidationError` that names the variable,
shows the offending value, and says what a well-formed value looks like.

The knobs themselves keep living next to the subsystems they configure
(``REPRO_JOBS`` in :mod:`repro.parallel.pool`, ``REPRO_EVAL_JOBS`` in
:mod:`repro.parallel.eval_pool`, ``REPRO_MC_BACKEND`` in
:mod:`repro.diffusion.mc_engine`, ``REPRO_FAULT_SPEC`` in
:mod:`repro.parallel.faults`); this module only owns the parsing.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.utils.exceptions import ValidationError


def read_env(name: str) -> Optional[str]:
    """The stripped value of ``name``, or ``None`` when unset or blank."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw or None


def read_env_int(name: str, hint: str = "e.g. 4, or -1 for all cores") -> Optional[int]:
    """Parse ``name`` as an integer knob (``None`` when unset/blank)."""
    raw = read_env(name)
    if raw is None:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValidationError(
            f"{name} must be an integer ({hint}), got {raw!r}; "
            f"fix or unset the variable"
        ) from None


def read_env_float(name: str, hint: str = "e.g. 30 or 0.5 (seconds)") -> Optional[float]:
    """Parse ``name`` as a float knob (``None`` when unset/blank)."""
    raw = read_env(name)
    if raw is None:
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValidationError(
            f"{name} must be a number ({hint}), got {raw!r}; "
            f"fix or unset the variable"
        ) from None


def read_env_choice(name: str, choices: Sequence[str]) -> Optional[str]:
    """Parse ``name`` as one of ``choices``, case-insensitively."""
    raw = read_env(name)
    if raw is None:
        return None
    value = raw.lower()
    if value not in choices:
        raise ValidationError(
            f"{name} must be one of {', '.join(choices)}, got {raw!r}; "
            f"fix or unset the variable"
        )
    return value
