"""Exception hierarchy used across the library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ReproError` so callers can catch library errors without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised intentionally by the library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or algorithm configuration is inconsistent."""


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph description could not be parsed."""


class SamplingBudgetExceeded(ReproError, RuntimeError):
    """A sampling loop hit its hard budget before meeting its stop rule.

    The noise-model algorithms (:class:`repro.core.addatp.ADDATP` and
    :class:`repro.core.hatp.HATP`) expose ``max_samples_per_round`` /
    ``max_rounds`` budgets so that the pure-Python RR-set engine cannot run
    away on large inputs.  By default hitting the budget makes the algorithm
    fall back to a best-effort decision; callers that prefer a hard failure
    can request ``on_budget="raise"`` and will receive this exception.
    """
