"""Exception hierarchy used across the library.

All exceptions raised intentionally by :mod:`repro` derive from
:class:`ReproError` so callers can catch library errors without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised intentionally by the library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, wrong shape, ...)."""


class ConfigurationError(ReproError, ValueError):
    """An experiment or algorithm configuration is inconsistent."""


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph description could not be parsed."""


class WorkerError(ReproError, RuntimeError):
    """A parallel worker task failed beyond recovery.

    Raised by the supervised dispatch layer (:mod:`repro.parallel.supervisor`)
    when a shard or session task has exhausted its retries *and* its
    in-process fallback also failed, or by the shared-memory broker when a
    publication step fails.  The attributes attach the task context that a
    bare re-raise used to drop:

    ``tier``
        Which parallel tier failed (``"sampling"`` or ``"eval"``).
    ``task``
        A human-readable task label (shard index, session index, ...).
    ``segments``
        The shared-memory segment names involved, if any.
    """

    def __init__(
        self,
        message: str,
        tier: str = None,
        task: str = None,
        segments=(),
    ) -> None:
        super().__init__(message)
        self.tier = tier
        self.task = task
        self.segments = tuple(segments)


class DeadlineExceeded(ReproError, TimeoutError):
    """A service query ran out of its per-query deadline budget.

    Raised by the serving tier (:mod:`repro.service`) when a query carries
    a ``deadline_ms`` (or the ``REPRO_SERVICE_DEADLINE_MS`` default is
    set) and the deadline passes before an answer is produced.  The HTTP
    layer maps it to a structured ``504``-style JSON error; the query
    never poisons the rest of its fused batch (``docs/robustness.md``,
    "Service resilience").
    """


class ServiceOverloadError(ReproError, RuntimeError):
    """The service shed a request instead of queueing it unboundedly.

    Raised by the admission-control layer (:mod:`repro.service.batcher`
    bounded pending queue, :class:`repro.service.api.SeedingServer`
    inflight budget).  Carries ``retry_after_ms`` — the server's estimate
    of when capacity frees up — which the HTTP layer serialises into the
    structured ``429`` answer.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = float(retry_after_ms)


class InjectedFault(ReproError, RuntimeError):
    """An artificial failure raised by the fault-injection harness.

    Only ever raised when a ``poison`` rule of ``REPRO_FAULT_SPEC`` (see
    :mod:`repro.parallel.faults`) matches a task submission — never during
    normal operation.  The chaos tests use it to prove that the supervised
    dispatch layer retries and degrades without changing results.
    """


class SamplingBudgetExceeded(ReproError, RuntimeError):
    """A sampling loop hit its hard budget before meeting its stop rule.

    The noise-model algorithms (:class:`repro.core.addatp.ADDATP` and
    :class:`repro.core.hatp.HATP`) expose ``max_samples_per_round`` /
    ``max_rounds`` budgets so that the pure-Python RR-set engine cannot run
    away on large inputs.  By default hitting the budget makes the algorithm
    fall back to a best-effort decision; callers that prefer a hard failure
    can request ``on_budget="raise"`` and will receive this exception.
    """
