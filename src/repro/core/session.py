"""The adaptive seeding session: the feedback loop between policy and market.

An adaptive policy interacts with the (unknown) realization through a
well-defined protocol:

1. It examines candidate nodes in some order.
2. When it *commits* to a seed ``u`` it pays ``c(u)`` and immediately
   observes ``A(u)`` — every node that ``u`` activates under the true
   realization, restricted to the current residual graph.
3. The activated nodes are removed from the residual graph before the next
   decision.

:class:`AdaptiveSession` encapsulates exactly this protocol.  Algorithms
never touch the realization directly; they only see the residual graph and
the feedback returned by :meth:`AdaptiveSession.commit_seed`, which is what
makes the implementation faithful to the paper's adaptive model (and keeps
"cheating" impossible by construction).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.core.profit import total_cost
from repro.diffusion.realization import BaseRealization, Realization
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph
from repro.utils.exceptions import ValidationError
from repro.utils.rng import RandomState


class AdaptiveSession:
    """State of one adaptive seeding run against one hidden realization.

    Parameters
    ----------
    graph:
        The full social graph ``G``.
    realization:
        The hidden possible world the market follows.  Policies must not
        inspect it; they only receive feedback through :meth:`commit_seed`.
    costs:
        Node-cost mapping (only target nodes need entries).
    """

    def __init__(
        self,
        graph: ProbabilisticGraph,
        realization: BaseRealization,
        costs: Mapping[int, float],
    ) -> None:
        if realization.graph is not graph:
            # Allow equal graphs (e.g. reconstructed), but insist on same size.
            if realization.graph.n != graph.n or realization.graph.m != graph.m:
                raise ValidationError(
                    "realization was sampled on a different graph than the session's"
                )
        self._graph = graph
        self._realization = realization
        self._costs: Dict[int, float] = {int(k): float(v) for k, v in costs.items()}
        self._residual = ResidualGraph(graph)
        self._seeds: List[int] = []
        self._activated: Set[int] = set()

    # ------------------------------------------------------------------ #
    # factory helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def with_sampled_realization(
        cls,
        graph: ProbabilisticGraph,
        costs: Mapping[int, float],
        random_state: RandomState = None,
    ) -> "AdaptiveSession":
        """Create a session with a freshly sampled realization."""
        return cls(graph, Realization.sample(graph, random_state), costs)

    # ------------------------------------------------------------------ #
    # read-only state available to policies
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> ProbabilisticGraph:
        """The full graph ``G``."""
        return self._graph

    @property
    def residual(self) -> ResidualGraph:
        """The current residual graph ``G_i`` (activated nodes removed)."""
        return self._residual

    @property
    def costs(self) -> Dict[int, float]:
        """The node-cost mapping."""
        return self._costs

    @property
    def seeds(self) -> List[int]:
        """Seeds committed so far, in order."""
        return list(self._seeds)

    @property
    def activated(self) -> Set[int]:
        """All nodes activated so far (seeds included)."""
        return set(self._activated)

    def is_activated(self, node: int) -> bool:
        """Whether ``node`` has already been activated (directly or virally)."""
        return int(node) in self._activated

    def cost_of(self, nodes: Iterable[int]) -> float:
        """Total cost of ``nodes``."""
        return total_cost(self._costs, nodes)

    # ------------------------------------------------------------------ #
    # realized outcome
    # ------------------------------------------------------------------ #

    @property
    def realized_spread(self) -> int:
        """Number of nodes activated so far."""
        return len(self._activated)

    @property
    def seed_cost(self) -> float:
        """Total cost paid for the committed seeds."""
        return total_cost(self._costs, self._seeds)

    @property
    def realized_profit(self) -> float:
        """Realized profit so far: activated nodes minus seed costs."""
        return self.realized_spread - self.seed_cost

    # ------------------------------------------------------------------ #
    # the feedback protocol
    # ------------------------------------------------------------------ #

    def commit_seed(self, node: int) -> Set[int]:
        """Commit ``node`` as a seed, observe and apply the market feedback.

        Returns ``A(node)`` — the set of nodes newly activated by this seed
        under the hidden realization (including the seed itself).  The
        residual graph is updated by removing them.

        Raises
        ------
        ValidationError
            If ``node`` has already been activated or is not a valid node.
        """
        node = int(node)
        if node < 0 or node >= self._graph.n:
            raise ValidationError(f"{node} is not a valid node id")
        if node in self._activated:
            raise ValidationError(
                f"node {node} is already activated and cannot be seeded again"
            )
        newly_activated = self._realization.activated_by([node], self._residual)
        self._seeds.append(node)
        self._activated.update(newly_activated)
        self._residual = self._residual.without(newly_activated)
        return newly_activated

    def evaluate_nonadaptive(self, seeds: Iterable[int]) -> "SeedingOutcome":
        """Evaluate a nonadaptively chosen seed set under this realization.

        Does not mutate the session.  Used to score NSG / NDG / HNTP and the
        Baseline (= the full target set) against the same possible worlds
        the adaptive algorithms face.
        """
        seeds = [int(v) for v in seeds]
        spread = self._realization.spread(seeds)
        cost = total_cost(self._costs, seeds)
        return SeedingOutcome(seeds=seeds, spread=spread, cost=cost)


class SeedingOutcome:
    """Spread / cost / profit of one seed set under one realization."""

    __slots__ = ("seeds", "spread", "cost")

    def __init__(self, seeds: List[int], spread: float, cost: float) -> None:
        self.seeds = seeds
        self.spread = float(spread)
        self.cost = float(cost)

    @property
    def profit(self) -> float:
        """``I_φ(S) − c(S)``."""
        return self.spread - self.cost

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SeedingOutcome seeds={len(self.seeds)} spread={self.spread:.1f} "
            f"profit={self.profit:.1f}>"
        )


def run_adaptive_policy(
    policy,
    graph: ProbabilisticGraph,
    realization: BaseRealization,
    costs: Mapping[int, float],
):
    """Convenience: build a session and run ``policy`` on it.

    ``policy`` must expose ``run(session) -> SeedingResult`` (all adaptive
    algorithms in :mod:`repro.core` and :mod:`repro.baselines` do).
    """
    session = AdaptiveSession(graph, realization, costs)
    return policy.run(session)
