"""HATP — adaptive double greedy with hybrid sampling error (Algorithm 4).

HATP keeps ADDATP's decision structure but estimates marginal spreads with
a *hybrid* error: a relative part ``ε_i`` and an additive part ``ζ_i``.
A round draws two RR collections of size
``θ = (1 + ε_i/3)² ln(4/δ_i) / (2 ε_i ζ_i)`` and forms the raw spread
estimates

``f_est = Cov_{R1}(u_i | S_{i−1}) · n_i/θ``  and
``r_est = Cov_{R2}(u_i | T_{i−1} \\ {u_i}) · n_i/θ``.

Stopping conditions:

* **C'1** — the hybrid confidence intervals already separate the decision:
  either the pessimistic value of ``f_est + r_est`` exceeds ``2 c(u_i)``
  (select) or its optimistic value falls below it (reject), or one of the
  one-sided tests fires.
* **C'2** — both error knobs hit their floors (``ε_i ≤ ε`` and
  ``n_i ζ_i ≤ 1``); the profit loss of a forced decision is bounded by
  ``2(1 + ε c(u_i))/(1 − ε)`` (Lemma 8).

Between rounds the schedule tightens whichever error component is binding
(see :class:`repro.core.errors.HybridErrorSchedule`), which is what makes
HATP roughly ``O(ε n)`` cheaper than ADDATP (Theorem 5 vs Theorem 3).

With ``sample_reuse=True`` the two collections of a node-iteration are kept
alive across refinement rounds and only the ``θ_i − θ_{i−1}`` *new* RR sets
are generated per round (IMM-style sample carrying — the residual graph is
frozen within a node-iteration, so all rounds sample the same
distribution); marginal estimates then come from incremental
:class:`~repro.sampling.coverage.CoverageCounter` state instead of
re-scanning the whole collection.  The default ``False`` path regenerates
from scratch each round and consumes the exact historical RNG stream.

The decision rule ``f_est + r_est ≥ 2 c(u_i)`` is algebraically the same
test as ADG's ``ρ_f ≥ ρ_r`` written in terms of the raw spread estimates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.errors import HybridErrorSchedule
from repro.core.estimation import FrontRearEstimator
from repro.core.results import IterationRecord, SeedingResult
from repro.core.session import AdaptiveSession
from repro.parallel.pool import SamplingPool, resolve_jobs
from repro.utils.exceptions import SamplingBudgetExceeded
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive, require_probability


class HATP:
    """Adaptive double greedy under the noise model with hybrid error.

    Parameters
    ----------
    target:
        Target candidate set ``T`` in examination order.
    epsilon:
        The relative-error threshold ``ε`` (approximation parameter;
        paper default 0.05).
    epsilon0:
        Initial relative error ``ε_0`` (paper default 0.5).
    initial_scaled_error:
        Initial ``n_i ζ_0`` (paper experiments use 64).
    additive_floor:
        The C'2 threshold on ``n_i ζ_i`` (paper: 1).
    max_rounds / max_samples_per_round / on_budget:
        Practical engine budgets, as in :class:`~repro.core.addatp.ADDATP`.
    random_state:
        RNG used for RR-set generation.
    n_jobs:
        Worker processes for RR-set generation (``None`` honours the
        ``REPRO_JOBS`` environment variable and otherwise keeps the
        historical in-process path; ``-1`` uses all cores).  When set, a
        persistent :class:`~repro.parallel.pool.SamplingPool` is held open
        for the whole run and the sampled batches are bit-for-bit
        independent of the worker count.
    sample_reuse:
        Carry RR collections across refinement rounds, extending them by
        only the newly required sets (roughly halves the RR sets generated
        per iteration at a geometric schedule).  ``False`` (default)
        regenerates per round on the exact historical RNG stream.
    backend:
        Kernel backend for RR generation, resolved through the registry
        (``None`` honours ``REPRO_BACKEND``; all backends are
        bit-for-bit identical, so this only changes speed).
    """

    name = "HATP"

    def __init__(
        self,
        target: Sequence[int],
        epsilon: float = 0.05,
        epsilon0: float = 0.5,
        initial_scaled_error: float = 64.0,
        additive_floor: float = 1.0,
        max_rounds: int = 30,
        max_samples_per_round: int = 20_000,
        on_budget: str = "decide",
        random_state: RandomState = None,
        n_jobs: Optional[int] = None,
        sample_reuse: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        require(len(target) > 0, "target set must not be empty")
        self._target: List[int] = [int(v) for v in target]
        require(len(set(self._target)) == len(self._target), "target set contains duplicates")
        require_probability(epsilon, "epsilon")
        require_probability(epsilon0, "epsilon0")
        require(epsilon0 >= epsilon, "epsilon0 must be >= epsilon")
        require_positive(initial_scaled_error, "initial_scaled_error")
        require_positive(additive_floor, "additive_floor")
        require_positive(max_rounds, "max_rounds")
        require_positive(max_samples_per_round, "max_samples_per_round")
        require(on_budget in {"decide", "raise"}, "on_budget must be 'decide' or 'raise'")
        self._epsilon = float(epsilon)
        self._epsilon0 = float(epsilon0)
        self._initial_scaled_error = float(initial_scaled_error)
        self._additive_floor = float(additive_floor)
        self._max_rounds = int(max_rounds)
        self._max_samples_per_round = int(max_samples_per_round)
        self._on_budget = on_budget
        self._rng = ensure_rng(random_state)
        self._n_jobs = resolve_jobs(n_jobs)
        self._sample_reuse = bool(sample_reuse)
        self._backend = backend

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #

    @property
    def target(self) -> List[int]:
        """The target candidate set, in examination order."""
        return list(self._target)

    @property
    def epsilon(self) -> float:
        """The relative-error threshold ``ε``."""
        return self._epsilon

    # ------------------------------------------------------------------ #
    # stopping condition C'1
    # ------------------------------------------------------------------ #

    @staticmethod
    def _condition_one(
        front_estimate: float,
        rear_estimate: float,
        scaled_error: float,
        epsilon: float,
        cost: float,
    ) -> bool:
        """Evaluate C'1 with the *current* relative error ``ε_i``."""
        select_sure = (front_estimate + rear_estimate - 2.0 * scaled_error) / (
            1.0 + epsilon
        ) >= 2.0 * cost
        rear_sure = (rear_estimate - scaled_error) / (1.0 + epsilon) >= cost
        reject_sure = (front_estimate + rear_estimate + 2.0 * scaled_error) / (
            1.0 - epsilon
        ) <= 2.0 * cost
        front_sure = (front_estimate + scaled_error) / (1.0 - epsilon) <= cost
        return select_sure or rear_sure or reject_sure or front_sure

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, session: AdaptiveSession) -> SeedingResult:
        """Execute Algorithm 4 against ``session``."""
        pool = (
            SamplingPool(session.graph, n_jobs=self._n_jobs, directions=("in",))
            if self._n_jobs is not None
            else None
        )
        try:
            return self._execute(session, pool)
        finally:
            if pool is not None:
                pool.close()

    def _execute(
        self, session: AdaptiveSession, pool: Optional[SamplingPool]
    ) -> SeedingResult:
        timer = Timer().start()
        n = max(session.graph.n, 2)
        k = len(self._target)
        costs = session.costs

        selected: List[int] = []
        candidates = set(self._target)
        iterations: List[IterationRecord] = []
        total_rr_sets = 0
        budget_hits = 0

        for node in self._target:
            if session.is_activated(node):
                candidates.discard(node)
                iterations.append(IterationRecord(node=node, action="skipped-activated"))
                continue

            residual = session.residual
            num_active = max(residual.num_active, 1)
            cost_u = costs.get(node, 0.0)

            zeta0 = min(max(self._initial_scaled_error / num_active, 1.0 / n), 0.999)
            schedule = HybridErrorSchedule(
                epsilon0=self._epsilon0,
                zeta0=zeta0,
                delta0=1.0 / (k * n),
                epsilon_threshold=self._epsilon,
                additive_floor=self._additive_floor,
            )
            state = schedule.initial()

            front_spread = rear_spread = 0.0
            rounds = 0
            rr_this_iteration = 0
            estimator = FrontRearEstimator(
                residual,
                node,
                selected,
                candidates - {node},
                self._rng,
                pool=pool,
                sample_reuse=self._sample_reuse,
                backend=self._backend,
            )
            while True:
                rounds += 1
                requested = schedule.sample_size(state)
                theta = min(requested, self._max_samples_per_round)
                sample_budget_hit = requested > self._max_samples_per_round

                front_spread, rear_spread, generated = estimator.estimates(theta)
                rr_this_iteration += generated

                scaled_error = state.scaled_error(num_active)
                condition_one = self._condition_one(
                    front_spread, rear_spread, scaled_error, state.epsilon, cost_u
                )
                condition_two = schedule.is_exhausted(state, num_active)
                round_budget_hit = rounds >= self._max_rounds

                if condition_one or condition_two or sample_budget_hit or round_budget_hit:
                    if (sample_budget_hit or round_budget_hit) and not (
                        condition_one or condition_two
                    ):
                        budget_hits += 1
                        if self._on_budget == "raise":
                            raise SamplingBudgetExceeded(
                                f"HATP hit its sampling budget on node {node} "
                                f"(requested {requested} RR sets per collection)"
                            )
                    break
                state = schedule.refine(state, num_active, front_spread)

            total_rr_sets += rr_this_iteration
            if front_spread + rear_spread >= 2.0 * cost_u:
                newly_activated = session.commit_seed(node)
                selected.append(node)
                action = "selected"
                newly = len(newly_activated)
            else:
                candidates.discard(node)
                action = "rejected"
                newly = 0
            iterations.append(
                IterationRecord(
                    node=node,
                    action=action,
                    front_estimate=front_spread - cost_u,
                    rear_estimate=cost_u - rear_spread,
                    rounds=rounds,
                    rr_sets_generated=rr_this_iteration,
                    newly_activated=newly,
                )
            )

        timer.stop()
        return SeedingResult(
            algorithm=self.name,
            seeds=selected,
            realized_spread=session.realized_spread,
            realized_profit=session.realized_profit,
            seed_cost=session.seed_cost,
            rr_sets_generated=total_rr_sets,
            runtime_seconds=timer.elapsed,
            iterations=iterations,
            extra={
                "epsilon": self._epsilon,
                "epsilon0": self._epsilon0,
                "budget_hits": budget_hits,
                "initial_scaled_error": self._initial_scaled_error,
                "sample_reuse": self._sample_reuse,
            },
        )
