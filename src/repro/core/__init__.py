"""Core algorithms of the paper: ADG, ADDATP, HATP, HNTP and their support.

Typical usage::

    from repro.core import AdaptiveSession, HATP, build_spread_calibrated_instance
    from repro.diffusion import Realization
    from repro.graphs import datasets

    graph = datasets.load_proxy("nethept", nodes=500, random_state=0)
    instance = build_spread_calibrated_instance(graph, k=25, random_state=0)
    session = AdaptiveSession(graph, Realization.sample(graph, 1), instance.costs)
    result = HATP(instance.target, random_state=2).run(session)
    print(result.realized_profit)
"""

from repro.core.adg import ADG
from repro.core.addatp import ADDATP
from repro.core.costs import (
    COST_SETTINGS,
    CostAssignment,
    degree_proportional_costs,
    estimate_spread_lower_bound,
    lambda_predefined_costs,
    random_costs,
    scale_costs,
    spread_calibrated_costs,
    uniform_costs,
)
from repro.core.errors import (
    AdditiveErrorSchedule,
    AdditiveErrorState,
    DynamicThresholdState,
    HybridErrorSchedule,
    HybridErrorState,
)
from repro.core.hatp import HATP
from repro.core.hntp import HNTP
from repro.core.oracle import (
    ExactSpreadOracle,
    MonteCarloSpreadOracle,
    ProfitOracle,
    RISSpreadOracle,
)
from repro.core.policies import (
    RealizationPolicy,
    adaptive_algorithm_policy,
    enumerate_realizations,
    exact_policy_profit,
    expected_policy_profit_sampled,
    fixed_set_policy,
    omniscient_profit_upper_bound,
    optimal_nonadaptive_profit,
    truncated_policy,
)
from repro.core.profit import (
    CostMap,
    profit_from_spread,
    realized_profit,
    realized_spread,
    total_cost,
    validate_costs,
)
from repro.core.results import IterationRecord, NonadaptiveSelection, SeedingResult
from repro.core.session import AdaptiveSession, SeedingOutcome, run_adaptive_policy
from repro.core.targets import (
    TPMInstance,
    build_predefined_cost_instance,
    build_spread_calibrated_instance,
)

__all__ = [
    "ADDATP",
    "ADG",
    "AdaptiveSession",
    "AdditiveErrorSchedule",
    "AdditiveErrorState",
    "COST_SETTINGS",
    "CostAssignment",
    "CostMap",
    "DynamicThresholdState",
    "ExactSpreadOracle",
    "HATP",
    "HNTP",
    "HybridErrorSchedule",
    "HybridErrorState",
    "IterationRecord",
    "MonteCarloSpreadOracle",
    "NonadaptiveSelection",
    "ProfitOracle",
    "RISSpreadOracle",
    "RealizationPolicy",
    "SeedingOutcome",
    "SeedingResult",
    "TPMInstance",
    "adaptive_algorithm_policy",
    "build_predefined_cost_instance",
    "build_spread_calibrated_instance",
    "degree_proportional_costs",
    "enumerate_realizations",
    "estimate_spread_lower_bound",
    "exact_policy_profit",
    "expected_policy_profit_sampled",
    "fixed_set_policy",
    "lambda_predefined_costs",
    "omniscient_profit_upper_bound",
    "optimal_nonadaptive_profit",
    "profit_from_spread",
    "random_costs",
    "realized_profit",
    "realized_spread",
    "run_adaptive_policy",
    "scale_costs",
    "spread_calibrated_costs",
    "total_cost",
    "truncated_policy",
    "uniform_costs",
    "validate_costs",
]
