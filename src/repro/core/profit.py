"""Profit functions: ``ρ(S) = E[I(S)] − c(S)`` and realized counterparts.

The profit function is a positive linear combination of a monotone
submodular function (the expected spread) and a negative modular function
(the seeding cost), hence submodular but in general non-monotone — the
reason the paper attacks the problem with (adaptive) *double greedy* rather
than the plain greedy used for influence maximization.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.diffusion.realization import BaseRealization
from repro.graphs.residual import ResidualGraph
from repro.utils.validation import require_non_negative

#: Type alias for node-cost mappings.
CostMap = Dict[int, float]


def total_cost(costs: Mapping[int, float], nodes: Iterable[int]) -> float:
    """``c(S)``: the total seeding cost of ``nodes``.

    Nodes absent from ``costs`` are free — only target nodes carry a cost.
    """
    return float(sum(costs.get(int(v), 0.0) for v in nodes))


def validate_costs(costs: Mapping[int, float]) -> CostMap:
    """Validate that every cost is non-negative and return a plain dict copy."""
    validated: CostMap = {}
    for node, cost in costs.items():
        require_non_negative(cost, f"cost of node {node}")
        validated[int(node)] = float(cost)
    return validated


def profit_from_spread(spread: float, nodes: Iterable[int], costs: Mapping[int, float]) -> float:
    """``ρ(S)`` given an (expected or realized) spread value for ``S``."""
    return float(spread) - total_cost(costs, nodes)


def realized_profit(
    realization: BaseRealization,
    seeds: Iterable[int],
    costs: Mapping[int, float],
    residual: Optional[ResidualGraph] = None,
) -> float:
    """``ρ_φ(S) = I_φ(S) − c(S)``: the profit under one fixed realization."""
    seeds = [int(v) for v in seeds]
    spread = realization.spread(seeds, residual)
    return profit_from_spread(spread, seeds, costs)


def realized_spread(
    realization: BaseRealization,
    seeds: Iterable[int],
    residual: Optional[ResidualGraph] = None,
) -> int:
    """``I_φ(S)``: the spread of ``seeds`` under one fixed realization."""
    return realization.spread([int(v) for v in seeds], residual)
