"""Result containers for seeding runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class IterationRecord:
    """What happened when one target candidate was examined."""

    node: int
    action: str  # "selected", "rejected", or "skipped-activated"
    front_estimate: Optional[float] = None
    rear_estimate: Optional[float] = None
    rounds: int = 0
    rr_sets_generated: int = 0
    newly_activated: int = 0


@dataclass
class SeedingResult:
    """Outcome of running one seeding algorithm against one realization.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the result.
    seeds:
        The committed seed set, in selection order.
    realized_spread:
        ``I_φ(S)``: number of nodes activated under the evaluation
        realization (for adaptive algorithms this is observed during the
        run; for nonadaptive algorithms it is evaluated afterwards).
    realized_profit:
        ``I_φ(S) − c(S)``.
    seed_cost:
        Total cost of the committed seeds.
    rr_sets_generated:
        Total number of RR sets (or spread-oracle queries) spent.
    runtime_seconds:
        Wall-clock seeding time (excludes evaluation of nonadaptive seeds).
    iterations:
        Per-candidate decision log.
    extra:
        Algorithm-specific diagnostics (error schedules, budget hits, ...).
    """

    algorithm: str
    seeds: List[int]
    realized_spread: float
    realized_profit: float
    seed_cost: float
    rr_sets_generated: int = 0
    runtime_seconds: float = 0.0
    iterations: List[IterationRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_seeds(self) -> int:
        """Number of committed seeds."""
        return len(self.seeds)

    def summary(self) -> Dict[str, object]:
        """Compact dictionary view used by the experiment reporters."""
        return {
            "algorithm": self.algorithm,
            "num_seeds": self.num_seeds,
            "profit": self.realized_profit,
            "spread": self.realized_spread,
            "cost": self.seed_cost,
            "rr_sets": self.rr_sets_generated,
            "runtime_s": self.runtime_seconds,
        }


@dataclass
class NonadaptiveSelection:
    """Outcome of a nonadaptive seed-selection algorithm (no realization yet).

    Nonadaptive algorithms (HNTP, NSG, NDG, RS) choose their whole seed set
    from the original graph before any market feedback exists.  The chosen
    set is then scored against realizations separately (see
    :meth:`repro.core.session.AdaptiveSession.evaluate_nonadaptive`).
    """

    algorithm: str
    seeds: List[int]
    seed_cost: float
    estimated_profit: Optional[float] = None
    rr_sets_generated: int = 0
    runtime_seconds: float = 0.0
    iterations: List[IterationRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_seeds(self) -> int:
        """Number of selected seeds."""
        return len(self.seeds)

    def to_seeding_result(
        self, realized_spread: float, realized_profit: float
    ) -> SeedingResult:
        """Attach realized outcomes, producing a :class:`SeedingResult`."""
        return SeedingResult(
            algorithm=self.algorithm,
            seeds=list(self.seeds),
            realized_spread=realized_spread,
            realized_profit=realized_profit,
            seed_cost=self.seed_cost,
            rr_sets_generated=self.rr_sets_generated,
            runtime_seconds=self.runtime_seconds,
            iterations=list(self.iterations),
            extra=dict(self.extra),
        )
