"""ADDATP — adaptive double greedy with additive sampling error (Algorithm 3).

ADDATP follows ADG's decision structure but replaces the oracle with RR-set
estimation.  For each candidate it runs estimation *rounds*: a round draws
two independent RR collections ``R1`` and ``R2`` of size
``θ = ln(8/δ_i) / (2 ζ_i²)``, forms the front / rear profit estimates

``ρ̃_f = Cov_{R1}(u_i | S_{i−1}) · n_i/θ − c(u_i)``,
``ρ̃_r = −Cov_{R2}(u_i | T_{i−1} \\ {u_i}) · n_i/θ + c(u_i)``,

and stops as soon as either

* **C1** — the estimates are separated by more than the error budget
  (``|ρ̃_f − ρ̃_r| ≥ 2 n_i ζ_i``) or one of them is clearly negative, i.e.
  the decision is already reliable; or
* **C2** — ``n_i ζ_i ≤ 1``: the node's marginal profit is so close to the
  decision boundary that a wrong decision costs at most a constant, so
  further sampling is not worth it.

Otherwise ``ζ_i`` shrinks by ``√2`` (quadrupling... precisely doubling the
sample size) and a new round begins.  Theorem 2 shows the expected profit is
at least ``(Λ(π^opt) − (2k + 2)) / 3``.

The pure-Python engine adds two practical budgets (``max_rounds`` and
``max_samples_per_round``); hitting a budget forces a best-effort decision
(or raises, if configured), mirroring how the original C++ implementation
simply runs out of memory on the largest settings (Section VI-B reports
exactly that for ADDATP).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.core.errors import AdditiveErrorSchedule, DynamicThresholdState
from repro.core.estimation import FrontRearEstimator
from repro.core.results import IterationRecord, SeedingResult
from repro.core.session import AdaptiveSession
from repro.parallel.pool import SamplingPool, resolve_jobs
from repro.utils.exceptions import SamplingBudgetExceeded
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive


class ADDATP:
    """Adaptive double greedy under the noise model with additive error.

    Parameters
    ----------
    target:
        Target candidate set ``T`` in examination order.
    initial_scaled_error:
        Initial value of ``n_i ζ_0`` (the experiments use 64); ``ζ_0`` is
        derived per iteration as ``initial_scaled_error / n_i`` clamped to
        ``[1/n, 1)``.
    c2_threshold:
        The stopping value of ``n_i ζ_i`` (paper: 1).
    dynamic_threshold:
        Enable the dynamic-threshold extension discussed after Theorem 2,
        which targets an expected ``(1−ε)/3`` ratio by budgeting the C2
        profit loss against the profit accumulated so far.
    dynamic_epsilon:
        The ``ε`` of the dynamic-threshold extension.
    max_rounds / max_samples_per_round:
        Practical budgets of the pure-Python engine.
    on_budget:
        ``"decide"`` (default) makes a best-effort decision with the current
        estimates when a budget is hit; ``"raise"`` raises
        :class:`~repro.utils.exceptions.SamplingBudgetExceeded`.
    random_state:
        RNG used for RR-set generation.
    n_jobs:
        Worker processes for RR-set generation (``None`` honours the
        ``REPRO_JOBS`` environment variable and otherwise keeps the
        historical in-process path; ``-1`` uses all cores).
    sample_reuse:
        Carry RR collections across refinement rounds, extending them by
        only the newly required sets instead of regenerating (the residual
        graph is frozen within a node-iteration, so all rounds sample the
        same distribution).  ``False`` (default) keeps the exact historical
        regenerate-per-round RNG stream.
    """

    name = "ADDATP"

    def __init__(
        self,
        target: Sequence[int],
        initial_scaled_error: float = 64.0,
        c2_threshold: float = 1.0,
        dynamic_threshold: bool = False,
        dynamic_epsilon: float = 0.1,
        max_rounds: int = 20,
        max_samples_per_round: int = 20_000,
        on_budget: str = "decide",
        random_state: RandomState = None,
        n_jobs: Optional[int] = None,
        sample_reuse: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        require(len(target) > 0, "target set must not be empty")
        self._target: List[int] = [int(v) for v in target]
        require(len(set(self._target)) == len(self._target), "target set contains duplicates")
        require_positive(initial_scaled_error, "initial_scaled_error")
        require_positive(c2_threshold, "c2_threshold")
        require_positive(max_rounds, "max_rounds")
        require_positive(max_samples_per_round, "max_samples_per_round")
        require(on_budget in {"decide", "raise"}, "on_budget must be 'decide' or 'raise'")
        self._initial_scaled_error = float(initial_scaled_error)
        self._c2_threshold = float(c2_threshold)
        self._dynamic_threshold = bool(dynamic_threshold)
        self._dynamic_epsilon = float(dynamic_epsilon)
        self._max_rounds = int(max_rounds)
        self._max_samples_per_round = int(max_samples_per_round)
        self._on_budget = on_budget
        self._rng = ensure_rng(random_state)
        self._n_jobs = resolve_jobs(n_jobs)
        self._sample_reuse = bool(sample_reuse)
        self._backend = backend

    @property
    def target(self) -> List[int]:
        """The target candidate set, in examination order."""
        return list(self._target)

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, session: AdaptiveSession) -> SeedingResult:
        """Execute Algorithm 3 against ``session``."""
        pool = (
            SamplingPool(session.graph, n_jobs=self._n_jobs, directions=("in",))
            if self._n_jobs is not None
            else None
        )
        try:
            return self._execute(session, pool)
        finally:
            if pool is not None:
                pool.close()

    def _execute(
        self, session: AdaptiveSession, pool: Optional[SamplingPool]
    ) -> SeedingResult:
        timer = Timer().start()
        n = max(session.graph.n, 2)
        k = len(self._target)
        costs = session.costs

        selected: List[int] = []
        candidates = set(self._target)
        iterations: List[IterationRecord] = []
        total_rr_sets = 0
        budget_hits = 0
        dynamic_state = DynamicThresholdState(
            epsilon=self._dynamic_epsilon, default_threshold=self._c2_threshold
        )

        for node in self._target:
            if session.is_activated(node):
                candidates.discard(node)
                iterations.append(IterationRecord(node=node, action="skipped-activated"))
                continue

            residual = session.residual
            num_active = max(residual.num_active, 1)
            cost_u = costs.get(node, 0.0)
            threshold = (
                dynamic_state.next_threshold()
                if self._dynamic_threshold
                else self._c2_threshold
            )

            zeta0 = min(max(self._initial_scaled_error / num_active, 1.0 / n), 0.999)
            schedule = AdditiveErrorSchedule(zeta0=zeta0, delta0=1.0 / (k * n))
            state = schedule.initial()

            front_estimate = rear_estimate = 0.0
            rounds = 0
            rr_this_iteration = 0
            stopped_by_c2 = False
            estimator = FrontRearEstimator(
                residual,
                node,
                selected,
                candidates - {node},
                self._rng,
                pool=pool,
                sample_reuse=self._sample_reuse,
                backend=self._backend,
            )
            while True:
                rounds += 1
                requested = schedule.sample_size(state)
                theta = min(requested, self._max_samples_per_round)
                sample_budget_hit = requested > self._max_samples_per_round

                front_spread, rear_spread, generated = estimator.estimates(theta)
                rr_this_iteration += generated
                front_estimate = front_spread - cost_u
                rear_estimate = -rear_spread + cost_u

                scaled_error = state.scaled_error(num_active)
                condition_one = (
                    abs(front_estimate - rear_estimate) >= 2.0 * scaled_error
                    or front_estimate <= -scaled_error
                    or rear_estimate <= -scaled_error
                )
                condition_two = scaled_error <= threshold
                round_budget_hit = rounds >= self._max_rounds

                if condition_one or condition_two or sample_budget_hit or round_budget_hit:
                    if (sample_budget_hit or round_budget_hit) and not (
                        condition_one or condition_two
                    ):
                        budget_hits += 1
                        if self._on_budget == "raise":
                            raise SamplingBudgetExceeded(
                                f"ADDATP hit its sampling budget on node {node} "
                                f"(requested {requested} RR sets per collection)"
                            )
                    stopped_by_c2 = condition_two and not condition_one
                    break
                state = schedule.refine(state)

            total_rr_sets += rr_this_iteration
            profit_before = session.realized_profit
            if front_estimate >= rear_estimate:
                newly_activated = session.commit_seed(node)
                selected.append(node)
                action = "selected"
                newly = len(newly_activated)
            else:
                candidates.discard(node)
                action = "rejected"
                newly = 0
            iterations.append(
                IterationRecord(
                    node=node,
                    action=action,
                    front_estimate=front_estimate,
                    rear_estimate=rear_estimate,
                    rounds=rounds,
                    rr_sets_generated=rr_this_iteration,
                    newly_activated=newly,
                )
            )
            if self._dynamic_threshold:
                dynamic_state = dynamic_state.after_iteration(
                    profit_gained=session.realized_profit - profit_before,
                    stopped_by_c2=stopped_by_c2,
                    threshold_used=threshold,
                )

        timer.stop()
        return SeedingResult(
            algorithm=self.name,
            seeds=selected,
            realized_spread=session.realized_spread,
            realized_profit=session.realized_profit,
            seed_cost=session.seed_cost,
            rr_sets_generated=total_rr_sets,
            runtime_seconds=timer.elapsed,
            iterations=iterations,
            extra={
                "budget_hits": budget_hits,
                "dynamic_threshold": self._dynamic_threshold,
                "initial_scaled_error": self._initial_scaled_error,
                "sample_reuse": self._sample_reuse,
            },
        )

    # ------------------------------------------------------------------ #
    # introspection helpers
    # ------------------------------------------------------------------ #

    def worst_case_sample_size(self, num_nodes: int) -> int:
        """RR sets one round would need at the C2 boundary (``n_i ζ_i = 1``).

        Illustrates the ``O(n_i² ln n)`` blow-up that motivates HATP.
        """
        n = max(int(num_nodes), 2)
        k = len(self._target)
        zeta = 1.0 / n
        delta = 1.0 / (k * n * (2 ** 20))
        return math.ceil(math.log(8.0 / delta) / (2.0 * zeta * zeta))
