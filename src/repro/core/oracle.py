"""Spread and profit oracles.

The paper analyses ADG in the *oracle model*: the expected spread of any
node set on any residual graph is assumed to be available in ``O(1)``.
That model is a theoretical device (exact spread computation is #P-hard),
so this module offers three interchangeable oracle implementations:

* :class:`ExactSpreadOracle` — possible-world enumeration; exact, but only
  feasible for unit-test-sized graphs.
* :class:`MonteCarloSpreadOracle` — averages forward IC simulations with
  common random numbers for marginals.
* :class:`RISSpreadOracle` — generates a fresh batch of RR sets per query;
  the cheapest option on medium graphs.

:class:`ProfitOracle` layers seeding costs on top of any spread oracle so
the oracle-model algorithm (:class:`repro.core.adg.ADG`) can query expected
marginal *profits* directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Protocol

from repro.core.profit import total_cost
from repro.diffusion.spread import (
    exact_expected_spread,
    monte_carlo_marginal_spread,
    monte_carlo_spread,
)
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.flat_collection import FlatRRCollection
from repro.utils.rng import RandomState, ensure_rng


class SpreadOracle(Protocol):
    """Anything that can answer expected-spread queries on residual graphs."""

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        """Expected spread ``E[I_G(S)]`` of ``seeds`` on ``graph``."""
        ...

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        """Conditional expected marginal spread ``E[I_G(u | S)]``."""
        ...


class ExactSpreadOracle:
    """Exact oracle by possible-world enumeration (tiny graphs only).

    Queries are memoised on ``(residual state, seed set)`` because analyses
    such as the exact policy-profit computation re-ask the same questions for
    every enumerated realization; the cache turns those repeated enumerations
    into dictionary lookups.
    """

    def __init__(self, max_edges: int = 20, cache: bool = True) -> None:
        self._max_edges = int(max_edges)
        self._cache: dict | None = {} if cache else None

    def _cache_key(self, graph, seeds: frozenset):
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return (id(view.base), view.active_mask.tobytes(), seeds)

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        seed_key = frozenset(int(v) for v in seeds)
        if self._cache is None:
            return exact_expected_spread(graph, seed_key, self._max_edges)
        key = self._cache_key(graph, seed_key)
        if key not in self._cache:
            self._cache[key] = exact_expected_spread(graph, seed_key, self._max_edges)
        return self._cache[key]

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        conditioning = {int(v) for v in conditioning_set}
        node = int(node)
        if node in conditioning:
            return 0.0
        with_node = self.expected_spread(graph, conditioning | {node})
        without_node = self.expected_spread(graph, conditioning) if conditioning else 0.0
        return with_node - without_node


class MonteCarloSpreadOracle:
    """Monte-Carlo oracle averaging forward IC cascades."""

    def __init__(self, num_simulations: int = 1000, random_state: RandomState = None) -> None:
        self._num_simulations = int(num_simulations)
        self._rng = ensure_rng(random_state)

    @property
    def num_simulations(self) -> int:
        """Cascades per query."""
        return self._num_simulations

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        return monte_carlo_spread(graph, seeds, self._num_simulations, self._rng)

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        return monte_carlo_marginal_spread(
            graph, node, conditioning_set, self._num_simulations, self._rng
        )


class RISSpreadOracle:
    """RIS-based oracle: a fresh RR batch per query (unbiased, cheap).

    ``n_jobs`` routes every query's batch through the parallel sampling
    subsystem (``None`` honours ``REPRO_JOBS``; ``-1`` uses all cores).
    The oracle is a repeated sampler, so it holds one persistent
    :class:`~repro.parallel.pool.SamplingPool` per base graph instead of
    paying worker start-up per query; call :meth:`close` (or use the
    oracle as a context manager) to release the pool's workers and shared
    memory eagerly.

    ``sample_reuse=True`` additionally caches the RR collection per
    residual *state* (base graph + activity mask): the double-greedy ADG
    loop asks several front/rear queries between seed commits, and with
    reuse all of them are answered from one batch instead of sampling a
    fresh one each time.  The estimator stays unbiased per query, but
    queries on the same residual state become correlated — acceptable for
    the oracle-model experiments, so it is opt-in.
    """

    def __init__(
        self,
        num_samples: int = 2000,
        random_state: RandomState = None,
        n_jobs: Optional[int] = None,
        sample_reuse: bool = False,
    ) -> None:
        from repro.parallel.pool import resolve_jobs

        self._num_samples = int(num_samples)
        self._rng = ensure_rng(random_state)
        self._n_jobs = resolve_jobs(n_jobs)
        self._pool = None
        self._sample_reuse = bool(sample_reuse)
        # The cached collection is keyed on the base graph *object* (a held
        # reference, never a recyclable id()) plus the activity-mask bytes.
        self._cached_base: Optional[ProbabilisticGraph] = None
        self._cached_mask: Optional[bytes] = None
        self._cached_collection: Optional[FlatRRCollection] = None

    @property
    def num_samples(self) -> int:
        """RR sets per query."""
        return self._num_samples

    def _collection(self, view: ResidualGraph) -> FlatRRCollection:
        if self._sample_reuse:
            mask_bytes = view.active_mask.tobytes()
            if self._cached_base is view.base and self._cached_mask == mask_bytes:
                return self._cached_collection
        collection = self._generate(view)
        if self._sample_reuse:
            self._cached_base = view.base
            self._cached_mask = mask_bytes
            self._cached_collection = collection
        return collection

    def _generate(self, view: ResidualGraph) -> FlatRRCollection:
        if self._n_jobs is None:
            return FlatRRCollection.generate(view, self._num_samples, self._rng)
        if self._pool is None or self._pool.base is not view.base:
            from repro.parallel.pool import SamplingPool

            if self._pool is not None:
                self._pool.close()
            self._pool = SamplingPool(view, n_jobs=self._n_jobs)
        return FlatRRCollection.generate(
            view, self._num_samples, self._rng, pool=self._pool
        )

    def close(self) -> None:
        """Release the held sampling pool, if any (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "RISSpreadOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return self._collection(view).estimate_spread(seeds)

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return self._collection(view).estimate_marginal_spread(node, conditioning_set)


class ProfitOracle:
    """Expected-profit oracle: a spread oracle plus a node-cost mapping.

    Implements Definition 3 of the paper: the conditional expected marginal
    profit ``∆_G(u | S) = E[I_G(u | S)] − c(u)`` for ``u ∉ S`` and ``0``
    otherwise.
    """

    def __init__(self, spread_oracle: SpreadOracle, costs: Mapping[int, float]) -> None:
        self._spread_oracle = spread_oracle
        self._costs: Dict[int, float] = {int(k): float(v) for k, v in costs.items()}

    @property
    def spread_oracle(self) -> SpreadOracle:
        """The underlying spread oracle."""
        return self._spread_oracle

    @property
    def costs(self) -> Dict[int, float]:
        """The node-cost mapping."""
        return self._costs

    def cost(self, nodes: Iterable[int]) -> float:
        """Total seeding cost of ``nodes``."""
        return total_cost(self._costs, nodes)

    def expected_profit(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        """``ρ_G(S) = E[I_G(S)] − c(S)``."""
        seeds = [int(v) for v in seeds]
        return self._spread_oracle.expected_spread(graph, seeds) - self.cost(seeds)

    def marginal_profit(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        """``∆_G(u | S)`` per Definition 3 (0 when ``u`` already in ``S``)."""
        node = int(node)
        conditioning = {int(v) for v in conditioning_set}
        if node in conditioning:
            return 0.0
        marginal = self._spread_oracle.marginal_spread(graph, node, conditioning)
        return marginal - self._costs.get(node, 0.0)
