"""Spread and profit oracles.

The paper analyses ADG in the *oracle model*: the expected spread of any
node set on any residual graph is assumed to be available in ``O(1)``.
That model is a theoretical device (exact spread computation is #P-hard),
so this module offers three interchangeable oracle implementations:

* :class:`ExactSpreadOracle` — possible-world enumeration; exact, but only
  feasible for unit-test-sized graphs.
* :class:`MonteCarloSpreadOracle` — averages forward IC simulations with
  common random numbers for marginals.
* :class:`RISSpreadOracle` — generates a fresh batch of RR sets per query;
  the cheapest option on medium graphs.

:class:`ProfitOracle` layers seeding costs on top of any spread oracle so
the oracle-model algorithm (:class:`repro.core.adg.ADG`) can query expected
marginal *profits* directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.profit import total_cost
from repro.diffusion.mc_engine import (
    replay_live_edges,
    resolve_mc_backend,
    sample_live_chunks,
)
from repro.diffusion.spread import (
    exact_expected_spread,
    monte_carlo_marginal_spread,
    monte_carlo_spread,
)
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import ResidualGraph, as_residual
from repro.sampling.flat_collection import FlatRRCollection
from repro.service.cache import LRUCache
from repro.utils.rng import RandomState, ensure_rng

#: Default capacity of the :class:`ExactSpreadOracle` memo.  Exact-policy
#: analyses enumerate every realization of a small graph and re-ask the
#: same (residual state, seed set) questions per world; tens of thousands
#: of entries cover those sweeps comfortably while bounding a long-lived
#: process (each entry is one float keyed by a small tuple).
EXACT_CACHE_SIZE = 65536


class SpreadOracle(Protocol):
    """Anything that can answer expected-spread queries on residual graphs."""

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        """Expected spread ``E[I_G(S)]`` of ``seeds`` on ``graph``."""
        ...

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        """Conditional expected marginal spread ``E[I_G(u | S)]``."""
        ...


class ExactSpreadOracle:
    """Exact oracle by possible-world enumeration (tiny graphs only).

    Queries are memoised on ``(residual state, seed set)`` because analyses
    such as the exact policy-profit computation re-ask the same questions for
    every enumerated realization; the cache turns those repeated enumerations
    into dictionary lookups.  The memo is a bounded LRU
    (:class:`repro.service.cache.LRUCache`, default capacity
    :data:`EXACT_CACHE_SIZE`) so a long-lived process cannot grow it without
    limit; ``cache_size`` tunes the bound, ``cache=False`` disables it.
    """

    def __init__(
        self,
        max_edges: int = 20,
        cache: bool = True,
        cache_size: int = EXACT_CACHE_SIZE,
    ) -> None:
        self._max_edges = int(max_edges)
        self._cache: LRUCache | None = LRUCache(cache_size) if cache else None

    @property
    def cache(self) -> LRUCache | None:
        """The bounded memo (``None`` when caching is disabled)."""
        return self._cache

    def _cache_key(self, graph, seeds: frozenset):
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return (id(view.base), view.active_mask.tobytes(), seeds)

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        seed_key = frozenset(int(v) for v in seeds)
        if self._cache is None:
            return exact_expected_spread(graph, seed_key, self._max_edges)
        key = self._cache_key(graph, seed_key)
        value = self._cache.get(key)
        if value is None:
            value = exact_expected_spread(graph, seed_key, self._max_edges)
            self._cache.put(key, value)
        return value

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        conditioning = {int(v) for v in conditioning_set}
        node = int(node)
        if node in conditioning:
            return 0.0
        with_node = self.expected_spread(graph, conditioning | {node})
        without_node = self.expected_spread(graph, conditioning) if conditioning else 0.0
        return with_node - without_node


class _PooledOracleMixin:
    """Lazy pool-per-base-graph lifecycle shared by the sampling oracles.

    Repeated samplers hold one persistent
    :class:`~repro.parallel.pool.SamplingPool` per base graph instead of
    paying worker start-up per query; :meth:`close` (or context-manager
    use) releases the workers and shared memory eagerly.  Subclasses call
    :meth:`_pool_for` with the CSR direction their workload reads.
    """

    _pool = None
    _n_jobs: Optional[int] = None

    def _pool_for(self, view: ResidualGraph, directions: Tuple[str, ...]):
        if self._pool is None or self._pool.base is not view.base:
            from repro.parallel.pool import SamplingPool

            if self._pool is not None:
                self._pool.close()
            self._pool = SamplingPool(
                view, n_jobs=self._n_jobs, directions=directions
            )
        return self._pool

    def close(self) -> None:
        """Release the held sampling pool, if any (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MonteCarloSpreadOracle(_PooledOracleMixin):
    """Monte-Carlo oracle averaging forward IC cascades.

    ``backend`` selects the simulation engine per query (resolved through
    :func:`repro.diffusion.mc_engine.resolve_mc_backend`; ``None`` honours
    ``REPRO_MC_BACKEND`` and defaults to the historical per-cascade
    ``"python"`` loop, keeping the exact historical RNG streams).  With
    any batched backend (``"vectorized"``, ``"auto"``, or a compiled
    kernel) every spread query runs as one batched
    frontier-at-a-time sweep, and ``n_jobs`` shards the
    :meth:`expected_spread` batches across a persistent
    :class:`~repro.parallel.pool.SamplingPool` per base graph (call
    :meth:`close` or use the oracle as a context manager to release the
    workers eagerly; output is bit-for-bit independent of the worker
    count).  Marginal queries deliberately stay in-process regardless of
    ``n_jobs``: they replay a *shared* realization stream whose contract
    is bit-for-bit equality with the historical per-realization loop, and
    sharding would re-draw the realizations per shard and break it.

    The batched backends additionally unlock the *batched query API*
    (:meth:`marginal_spreads`, :meth:`marginal_spread_pair`): many
    candidate marginals are evaluated against one shared realization
    stream (common random numbers across *queries*, not just within one),
    which is how ADG amortises its per-node front/rear evaluations over a
    single bulk draw.
    """

    def __init__(
        self,
        num_simulations: int = 1000,
        random_state: RandomState = None,
        backend: Optional[str] = None,
        n_jobs: Optional[int] = None,
    ) -> None:
        from repro.parallel.pool import resolve_jobs

        self._num_simulations = int(num_simulations)
        self._rng = ensure_rng(random_state)
        self._backend = resolve_mc_backend(backend)
        self._n_jobs = resolve_jobs(n_jobs) if self._backend != "python" else None
        self._pool = None

    @property
    def num_simulations(self) -> int:
        """Cascades per query."""
        return self._num_simulations

    @property
    def backend(self) -> str:
        """Resolved simulation backend (a registered kernel name)."""
        return self._backend

    def _query_pool(self, view: ResidualGraph):
        if self._n_jobs is None:
            return None
        return self._pool_for(view, ("out",))

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return monte_carlo_spread(
            view,
            seeds,
            self._num_simulations,
            self._rng,
            backend=self._backend,
            pool=self._query_pool(view),
        )

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        return monte_carlo_marginal_spread(
            graph,
            node,
            conditioning_set,
            self._num_simulations,
            self._rng,
            backend=self._backend,
        )

    # ------------------------------------------------------------------ #
    # batched query API (shared realizations across queries)
    # ------------------------------------------------------------------ #

    def _batched_mean_spreads(
        self, view: ResidualGraph, seed_sets: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """Mean spread of several seed sets over one shared realization stream.

        Draws ``num_simulations`` live-edge realizations in bulk rows and
        replays every seed set against each of them through the batched
        live-edge engine — common random numbers across all queries, one
        coin-flip pass regardless of how many seed sets are evaluated.
        """
        base = view.base
        totals = np.zeros(len(seed_sets), dtype=np.int64)
        sims = self._num_simulations
        for live in sample_live_chunks(self._rng, base.out_csr()[2], sims):
            for index, seed_set in enumerate(seed_sets):
                if seed_set:
                    totals[index] += int(
                        replay_live_edges(
                            view, seed_set, live, backend=self._backend
                        ).sum()
                    )
        return totals / sims

    def marginal_spreads(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        nodes: Sequence[int],
        conditioning_set: Iterable[int],
    ) -> np.ndarray:
        """``E[I(u | S)]`` for many candidates ``u`` in one batched call.

        All candidates share the same realization stream (and the same
        baseline ``E[I(S)]`` evaluation), so the whole sweep costs one bulk
        coin-flip pass plus one replay per candidate instead of one full
        Monte-Carlo run per candidate.  Candidates already in ``S`` read
        0.0, mirroring :meth:`marginal_spread`.  With ``backend="python"``
        the historical per-query loop runs instead.
        """
        nodes = [int(v) for v in nodes]
        conditioning = [int(v) for v in conditioning_set]
        if self._backend == "python":
            return np.asarray(
                [self.marginal_spread(graph, node, conditioning) for node in nodes],
                dtype=np.float64,
            )
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        members = set(conditioning)
        candidates = [node for node in nodes if node not in members]
        seed_sets: List[List[int]] = [conditioning]
        seed_sets.extend(conditioning + [node] for node in candidates)
        means = self._batched_mean_spreads(view, seed_sets)
        baseline = means[0] if conditioning else 0.0
        by_node = dict(zip(candidates, means[1:]))
        return np.asarray(
            [by_node[node] - baseline if node in by_node else 0.0 for node in nodes],
            dtype=np.float64,
        )

    def marginal_spread_pair(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        front_conditioning: Iterable[int],
        rear_conditioning: Iterable[int],
    ) -> Tuple[float, float]:
        """``(E[I(u | S)], E[I(u | R)])`` from one shared realization batch.

        The double-greedy decision of ADG needs exactly this pair per
        examined node; evaluating both marginals against the same bulk draw
        halves the sampling cost and correlates the front/rear noise (a
        variance reduction for the *comparison* the algorithm makes).
        """
        node = int(node)
        front = [int(v) for v in front_conditioning]
        rear = [int(v) for v in rear_conditioning]
        if self._backend == "python":
            return (
                self.marginal_spread(graph, node, front),
                self.marginal_spread(graph, node, rear),
            )
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        seed_sets: List[List[int]] = []
        layout: List[Optional[Tuple[int, int]]] = []
        for conditioning in (front, rear):
            if node in conditioning:
                layout.append(None)
                continue
            without_index = len(seed_sets)
            seed_sets.append(conditioning)
            seed_sets.append(conditioning + [node])
            layout.append((without_index, without_index + 1))
        if not seed_sets:
            return 0.0, 0.0
        means = self._batched_mean_spreads(view, seed_sets)
        results = []
        for slot in layout:
            if slot is None:
                results.append(0.0)
            else:
                without_index, with_index = slot
                results.append(float(means[with_index] - means[without_index]))
        return results[0], results[1]


class RISSpreadOracle(_PooledOracleMixin):
    """RIS-based oracle: a fresh RR batch per query (unbiased, cheap).

    ``n_jobs`` routes every query's batch through the parallel sampling
    subsystem (``None`` honours ``REPRO_JOBS``; ``-1`` uses all cores).
    The oracle is a repeated sampler, so it holds one persistent
    :class:`~repro.parallel.pool.SamplingPool` per base graph instead of
    paying worker start-up per query; call :meth:`close` (or use the
    oracle as a context manager) to release the pool's workers and shared
    memory eagerly.

    ``sample_reuse=True`` additionally caches the RR collection per
    residual *state* (base graph + activity mask): the double-greedy ADG
    loop asks several front/rear queries between seed commits, and with
    reuse all of them are answered from one batch instead of sampling a
    fresh one each time.  The estimator stays unbiased per query, but
    queries on the same residual state become correlated — acceptable for
    the oracle-model experiments, so it is opt-in.  The cache is a bounded
    LRU (:class:`repro.service.cache.LRUCache`); ``cache_size=1``, the
    default, reproduces the historical single-entry semantics bit-for-bit
    (returning to an earlier residual state regenerates, consuming the
    same RNG draws), while the long-lived service raises it to keep many
    residual states warm at once.
    """

    def __init__(
        self,
        num_samples: int = 2000,
        random_state: RandomState = None,
        n_jobs: Optional[int] = None,
        sample_reuse: bool = False,
        cache_size: int = 1,
    ) -> None:
        from repro.parallel.pool import resolve_jobs

        self._num_samples = int(num_samples)
        self._rng = ensure_rng(random_state)
        self._n_jobs = resolve_jobs(n_jobs)
        self._pool = None
        self._sample_reuse = bool(sample_reuse)
        # Cached collections are keyed on the base graph's id() plus the
        # activity-mask bytes; each entry holds the base graph *object* so
        # the id can never be recycled while the entry is alive.
        self._collections = LRUCache(cache_size)

    @property
    def num_samples(self) -> int:
        """RR sets per query."""
        return self._num_samples

    @property
    def collection_cache(self) -> LRUCache:
        """The bounded per-residual-state collection cache (``sample_reuse``)."""
        return self._collections

    def _collection(self, view: ResidualGraph) -> FlatRRCollection:
        if not self._sample_reuse:
            return self._generate(view)
        key = (id(view.base), view.active_mask.tobytes())
        entry = self._collections.get(key)
        if entry is not None:
            return entry[1]
        collection = self._generate(view)
        self._collections.put(key, (view.base, collection))
        return collection

    def _generate(self, view: ResidualGraph) -> FlatRRCollection:
        if self._n_jobs is None:
            return FlatRRCollection.generate(view, self._num_samples, self._rng)
        return FlatRRCollection.generate(
            view, self._num_samples, self._rng, pool=self._pool_for(view, ("in",))
        )

    def expected_spread(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return self._collection(view).estimate_spread(seeds)

    def marginal_spread(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        view = as_residual(graph) if isinstance(graph, ProbabilisticGraph) else graph
        return self._collection(view).estimate_marginal_spread(node, conditioning_set)


class ProfitOracle:
    """Expected-profit oracle: a spread oracle plus a node-cost mapping.

    Implements Definition 3 of the paper: the conditional expected marginal
    profit ``∆_G(u | S) = E[I_G(u | S)] − c(u)`` for ``u ∉ S`` and ``0``
    otherwise.
    """

    def __init__(self, spread_oracle: SpreadOracle, costs: Mapping[int, float]) -> None:
        self._spread_oracle = spread_oracle
        self._costs: Dict[int, float] = {int(k): float(v) for k, v in costs.items()}

    @property
    def spread_oracle(self) -> SpreadOracle:
        """The underlying spread oracle."""
        return self._spread_oracle

    @property
    def costs(self) -> Dict[int, float]:
        """The node-cost mapping."""
        return self._costs

    def cost(self, nodes: Iterable[int]) -> float:
        """Total seeding cost of ``nodes``."""
        return total_cost(self._costs, nodes)

    def expected_profit(
        self, graph: ProbabilisticGraph | ResidualGraph, seeds: Iterable[int]
    ) -> float:
        """``ρ_G(S) = E[I_G(S)] − c(S)``."""
        seeds = [int(v) for v in seeds]
        return self._spread_oracle.expected_spread(graph, seeds) - self.cost(seeds)

    def marginal_profit(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        conditioning_set: Iterable[int],
    ) -> float:
        """``∆_G(u | S)`` per Definition 3 (0 when ``u`` already in ``S``)."""
        node = int(node)
        conditioning = {int(v) for v in conditioning_set}
        if node in conditioning:
            return 0.0
        marginal = self._spread_oracle.marginal_spread(graph, node, conditioning)
        return marginal - self._costs.get(node, 0.0)

    def marginal_profits(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        nodes: Sequence[int],
        conditioning_set: Iterable[int],
    ) -> np.ndarray:
        """``∆_G(u | S)`` for many candidates ``u`` in one call.

        Uses the spread oracle's batched :meth:`marginal_spreads` when it
        offers one (the vectorized Monte-Carlo oracle shares a single
        realization stream across all candidates); otherwise falls back to
        per-candidate queries in candidate order.
        """
        nodes = [int(v) for v in nodes]
        conditioning = {int(v) for v in conditioning_set}
        batched = getattr(self._spread_oracle, "marginal_spreads", None)
        if batched is not None:
            spreads = np.asarray(batched(graph, nodes, conditioning), dtype=np.float64)
        else:
            spreads = np.asarray(
                [
                    0.0
                    if node in conditioning
                    else self._spread_oracle.marginal_spread(graph, node, conditioning)
                    for node in nodes
                ],
                dtype=np.float64,
            )
        return np.asarray(
            [
                0.0 if node in conditioning else spread - self._costs.get(node, 0.0)
                for node, spread in zip(nodes, spreads)
            ],
            dtype=np.float64,
        )

    def marginal_profit_pair(
        self,
        graph: ProbabilisticGraph | ResidualGraph,
        node: int,
        front_conditioning: Iterable[int],
        rear_conditioning: Iterable[int],
    ) -> Tuple[float, float]:
        """The front/rear profit pair of one double-greedy decision.

        ``(∆_G(u | S), ∆_G(u | R))`` for the two conditioning sets ADG
        compares at every examined node.  Spread oracles exposing a batched
        :meth:`marginal_spread_pair` (the vectorized Monte-Carlo oracle)
        answer both marginals from one shared realization batch; all other
        oracles fall back to two sequential :meth:`marginal_profit` calls —
        front first, rear second, exactly the historical query order.
        """
        node = int(node)
        front = {int(v) for v in front_conditioning}
        rear = {int(v) for v in rear_conditioning}
        paired = getattr(self._spread_oracle, "marginal_spread_pair", None)
        if paired is None:
            return (
                self.marginal_profit(graph, node, front),
                self.marginal_profit(graph, node, rear),
            )
        front_spread, rear_spread = paired(graph, node, front, rear)
        cost = self._costs.get(node, 0.0)
        return (
            0.0 if node in front else front_spread - cost,
            0.0 if node in rear else rear_spread - cost,
        )
