"""Target-set construction: the two experimental procedures of Section VI-A.

**Procedure 1 (spread-calibrated)** — pick the top-``k`` influential nodes
as the target set ``T``, then set the total cost ``c(T)`` to a lower bound
of ``E[I(T)]`` and distribute it by one of the cost settings
(degree-proportional / uniform / random).

**Procedure 2 (predefined costs)** — first assign every node in the graph a
cost controlled by the ratio ``λ = c(V)/n``, then run a nonadaptive profit
algorithm (NDG or NSG) over the whole graph; its output becomes the target
set ``T`` that the adaptive algorithms subsequently refine.

Both procedures return a :class:`TPMInstance`, the bundle the adaptive and
nonadaptive algorithms consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.imm import top_k_influential
from repro.baselines.ndg import NDG
from repro.baselines.nsg import NSG
from repro.core.costs import (
    CostAssignment,
    lambda_predefined_costs,
    spread_calibrated_costs,
)
from repro.graphs.graph import ProbabilisticGraph
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require, require_positive


@dataclass
class TPMInstance:
    """One target-profit-maximization problem instance.

    Attributes
    ----------
    graph:
        The social graph ``G``.
    target:
        The target candidate set ``T`` (in examination order).
    cost_assignment:
        Per-node costs, including provenance metadata.
    metadata:
        How the instance was constructed (procedure, k, λ, ...).
    """

    graph: ProbabilisticGraph
    target: List[int]
    cost_assignment: CostAssignment
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def costs(self) -> Dict[int, float]:
        """Plain node-cost mapping (what the algorithms consume)."""
        return self.cost_assignment.costs

    @property
    def k(self) -> int:
        """Size of the target set."""
        return len(self.target)

    def target_cost(self) -> float:
        """``c(T)``: total cost of the whole target set."""
        return self.cost_assignment.cost_of(self.target)


def build_spread_calibrated_instance(
    graph: ProbabilisticGraph,
    k: int,
    cost_setting: str = "degree",
    num_rr_sets: int = 5000,
    random_state: RandomState = None,
) -> TPMInstance:
    """Procedure 1: top-``k`` influential target with spread-calibrated costs.

    Parameters
    ----------
    graph:
        The social graph.
    k:
        Target-set size (the paper sweeps {10, 25, 50, 100, 200, 500}).
    cost_setting:
        ``"degree"``, ``"uniform"``, or ``"random"``.
    num_rr_sets:
        Sample size for both the top-``k`` selection and the spread
        lower bound.
    """
    require_positive(k, "k")
    require(k <= graph.n, "k cannot exceed the number of nodes")
    rng = ensure_rng(random_state)
    target = top_k_influential(graph, k, num_samples=num_rr_sets, random_state=rng)
    assignment = spread_calibrated_costs(
        graph, target, setting=cost_setting, num_rr_sets=num_rr_sets, random_state=rng
    )
    return TPMInstance(
        graph=graph,
        target=target,
        cost_assignment=assignment,
        metadata={"procedure": "spread-calibrated", "k": k, "cost_setting": cost_setting},
    )


def build_predefined_cost_instance(
    graph: ProbabilisticGraph,
    cost_ratio: float,
    cost_setting: str = "degree",
    selector: str = "ndg",
    num_samples: int = 5000,
    max_target_size: Optional[int] = None,
    random_state: RandomState = None,
) -> TPMInstance:
    """Procedure 2: λ-predefined costs, target chosen by NDG or NSG.

    Parameters
    ----------
    graph:
        The social graph.
    cost_ratio:
        The paper's λ = c(V)/n (smaller λ → cheaper nodes → larger targets).
    cost_setting:
        ``"degree"``, ``"uniform"``, or ``"random"``.
    selector:
        ``"ndg"`` or ``"nsg"`` — which nonadaptive algorithm derives ``T``.
    num_samples:
        RR-set batch for the selector.
    max_target_size:
        Optional cap on ``|T|`` (keeps the adaptive refinement tractable on
        the proxy graphs; the highest-degree members are kept).
    """
    rng = ensure_rng(random_state)
    assignment = lambda_predefined_costs(
        graph, cost_ratio, setting=cost_setting, random_state=rng
    )
    all_nodes = list(range(graph.n))
    if selector == "ndg":
        selection = NDG(all_nodes, num_samples=num_samples, random_state=rng).select(
            graph, assignment.costs
        )
    elif selector == "nsg":
        selection = NSG(all_nodes, num_samples=num_samples, random_state=rng).select(
            graph, assignment.costs
        )
    else:
        raise ConfigurationError(f"selector must be 'ndg' or 'nsg', got {selector!r}")

    target = list(selection.seeds)
    if not target:
        # Fall back to the most influential nodes so downstream algorithms
        # always have something to refine (can happen when λ is set too high
        # for a small proxy graph).
        target = top_k_influential(graph, min(10, graph.n), num_samples, rng)
    if max_target_size is not None and len(target) > max_target_size:
        target = sorted(target, key=lambda v: -graph.out_degree(v))[:max_target_size]

    return TPMInstance(
        graph=graph,
        target=target,
        cost_assignment=assignment.restricted_to(target),
        metadata={
            "procedure": "lambda-predefined",
            "lambda": cost_ratio,
            "cost_setting": cost_setting,
            "selector": selector,
            "selector_target_size": len(selection.seeds),
        },
    )
