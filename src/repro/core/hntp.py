"""HNTP — the nonadaptive counterpart of HATP.

The paper tailors HATP into a nonadaptive algorithm (Section VI-A) to
isolate the value of adaptivity: HNTP runs exactly the same hybrid-error
double-greedy decisions, regenerating RR sets each iteration with the same
error schedule, but it never observes market feedback — the graph is never
reduced to a residual graph and the whole seed set is committed in one
batch at the end.

Because nothing is removed, every iteration samples on the full graph
``G`` (which is also why the paper observes HNTP to be slightly *slower*
than HATP: HATP's RR sets live on ever-shrinking residual graphs).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.errors import HybridErrorSchedule
from repro.core.estimation import FrontRearEstimator
from repro.core.hatp import HATP
from repro.core.results import IterationRecord, NonadaptiveSelection
from repro.graphs.graph import ProbabilisticGraph
from repro.graphs.residual import as_residual
from repro.parallel.pool import SamplingPool, resolve_jobs
from repro.utils.exceptions import SamplingBudgetExceeded
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import require, require_positive, require_probability


class HNTP:
    """Nonadaptive hybrid-error double greedy (HATP without feedback).

    Parameters mirror :class:`repro.core.hatp.HATP`.
    """

    name = "HNTP"

    def __init__(
        self,
        target: Sequence[int],
        epsilon: float = 0.05,
        epsilon0: float = 0.5,
        initial_scaled_error: float = 64.0,
        additive_floor: float = 1.0,
        max_rounds: int = 30,
        max_samples_per_round: int = 20_000,
        on_budget: str = "decide",
        random_state: RandomState = None,
        n_jobs: Optional[int] = None,
        sample_reuse: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        require(len(target) > 0, "target set must not be empty")
        self._target: List[int] = [int(v) for v in target]
        require(len(set(self._target)) == len(self._target), "target set contains duplicates")
        require_probability(epsilon, "epsilon")
        require_probability(epsilon0, "epsilon0")
        require(epsilon0 >= epsilon, "epsilon0 must be >= epsilon")
        require_positive(initial_scaled_error, "initial_scaled_error")
        require_positive(additive_floor, "additive_floor")
        require_positive(max_rounds, "max_rounds")
        require_positive(max_samples_per_round, "max_samples_per_round")
        require(on_budget in {"decide", "raise"}, "on_budget must be 'decide' or 'raise'")
        self._epsilon = float(epsilon)
        self._epsilon0 = float(epsilon0)
        self._initial_scaled_error = float(initial_scaled_error)
        self._additive_floor = float(additive_floor)
        self._max_rounds = int(max_rounds)
        self._max_samples_per_round = int(max_samples_per_round)
        self._on_budget = on_budget
        self._rng = ensure_rng(random_state)
        self._n_jobs = resolve_jobs(n_jobs)
        self._sample_reuse = bool(sample_reuse)
        self._backend = backend

    @property
    def target(self) -> List[int]:
        """The target candidate set, in examination order."""
        return list(self._target)

    def select(
        self, graph: ProbabilisticGraph, costs: Mapping[int, float]
    ) -> NonadaptiveSelection:
        """Choose the seed set nonadaptively on the full graph ``G``."""
        pool = (
            SamplingPool(graph, n_jobs=self._n_jobs, directions=("in",))
            if self._n_jobs is not None
            else None
        )
        try:
            return self._select(graph, costs, pool)
        finally:
            if pool is not None:
                pool.close()

    def _select(
        self,
        graph: ProbabilisticGraph,
        costs: Mapping[int, float],
        pool: Optional[SamplingPool],
    ) -> NonadaptiveSelection:
        timer = Timer().start()
        view = as_residual(graph)
        n = max(graph.n, 2)
        k = len(self._target)
        cost_map: Dict[int, float] = {int(key): float(value) for key, value in costs.items()}

        selected: List[int] = []
        candidates = set(self._target)
        iterations: List[IterationRecord] = []
        total_rr_sets = 0
        budget_hits = 0

        for node in self._target:
            cost_u = cost_map.get(node, 0.0)
            zeta0 = min(max(self._initial_scaled_error / n, 1.0 / n), 0.999)
            schedule = HybridErrorSchedule(
                epsilon0=self._epsilon0,
                zeta0=zeta0,
                delta0=1.0 / (k * n),
                epsilon_threshold=self._epsilon,
                additive_floor=self._additive_floor,
            )
            state = schedule.initial()

            front_spread = rear_spread = 0.0
            rounds = 0
            rr_this_iteration = 0
            estimator = FrontRearEstimator(
                view,
                node,
                selected,
                candidates - {node},
                self._rng,
                pool=pool,
                sample_reuse=self._sample_reuse,
                backend=self._backend,
            )
            while True:
                rounds += 1
                requested = schedule.sample_size(state)
                theta = min(requested, self._max_samples_per_round)
                sample_budget_hit = requested > self._max_samples_per_round

                front_spread, rear_spread, generated = estimator.estimates(theta)
                rr_this_iteration += generated

                scaled_error = state.scaled_error(n)
                condition_one = HATP._condition_one(
                    front_spread, rear_spread, scaled_error, state.epsilon, cost_u
                )
                condition_two = schedule.is_exhausted(state, n)
                round_budget_hit = rounds >= self._max_rounds

                if condition_one or condition_two or sample_budget_hit or round_budget_hit:
                    if (sample_budget_hit or round_budget_hit) and not (
                        condition_one or condition_two
                    ):
                        budget_hits += 1
                        if self._on_budget == "raise":
                            raise SamplingBudgetExceeded(
                                f"HNTP hit its sampling budget on node {node}"
                            )
                    break
                state = schedule.refine(state, n, front_spread)

            total_rr_sets += rr_this_iteration
            if front_spread + rear_spread >= 2.0 * cost_u:
                selected.append(node)
                action = "selected"
            else:
                candidates.discard(node)
                action = "rejected"
            iterations.append(
                IterationRecord(
                    node=node,
                    action=action,
                    front_estimate=front_spread - cost_u,
                    rear_estimate=cost_u - rear_spread,
                    rounds=rounds,
                    rr_sets_generated=rr_this_iteration,
                )
            )

        timer.stop()
        seed_cost = sum(cost_map.get(node, 0.0) for node in selected)
        return NonadaptiveSelection(
            algorithm=self.name,
            seeds=selected,
            seed_cost=seed_cost,
            rr_sets_generated=total_rr_sets,
            runtime_seconds=timer.elapsed,
            iterations=iterations,
            extra={
                "epsilon": self._epsilon,
                "budget_hits": budget_hits,
                "sample_reuse": self._sample_reuse,
            },
        )
