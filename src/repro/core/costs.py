"""Seeding-cost models.

The paper's experiments (Section VI-A) use two procedures to obtain the
target set ``T`` and the per-node costs:

1. **Spread-calibrated costs** — ``T`` is the top-``k`` influential node set
   and the *total* cost is pinned to a lower bound of the target set's
   expected spread, ``c(T) = E_l[I(T)]``, distributed across nodes either
   proportionally to out-degree (*degree-proportional*), equally
   (*uniform*), or at random (*random*, Fig. 4a).
2. **Predefined costs** — every node in the graph gets a cost before ``T``
   is chosen; the ratio ``λ = c(V)/n`` controls how expensive seeding is and
   therefore how large the profitable target set ends up being.

This module implements both procedures plus the individual distribution
schemes, all deterministic given an RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.core.profit import CostMap, total_cost
from repro.diffusion.spread import expected_spread_lower_bound, monte_carlo_spread_samples
from repro.graphs.graph import ProbabilisticGraph
from repro.sampling.flat_collection import FlatRRCollection
from repro.utils.exceptions import ConfigurationError
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import require, require_non_negative, require_positive

#: Canonical names of the three cost settings studied in the paper.
COST_SETTINGS = ("degree", "uniform", "random")


@dataclass(frozen=True)
class CostAssignment:
    """A node-cost mapping together with provenance metadata."""

    costs: CostMap
    setting: str
    total: float
    calibration_spread: Optional[float] = None
    metadata: dict = field(default_factory=dict)

    def cost_of(self, nodes: Iterable[int]) -> float:
        """Total cost of ``nodes``."""
        return total_cost(self.costs, nodes)

    def restricted_to(self, nodes: Iterable[int]) -> "CostAssignment":
        """Assignment restricted to ``nodes`` (e.g. a chosen target set)."""
        keep = {int(v) for v in nodes}
        costs = {node: cost for node, cost in self.costs.items() if node in keep}
        return CostAssignment(
            costs=costs,
            setting=self.setting,
            total=sum(costs.values()),
            calibration_spread=self.calibration_spread,
            metadata=dict(self.metadata),
        )


# --------------------------------------------------------------------------- #
# distribution schemes
# --------------------------------------------------------------------------- #


def degree_proportional_costs(
    graph: ProbabilisticGraph, nodes: Sequence[int], total: float
) -> CostMap:
    """Distribute ``total`` across ``nodes`` proportionally to out-degree.

    Nodes with zero out-degree receive the same share as degree-one nodes so
    that every node carries a strictly positive cost (a free node would make
    the double-greedy decision trivial).
    """
    require_non_negative(total, "total")
    nodes = [int(v) for v in nodes]
    if not nodes:
        return {}
    degrees = np.asarray([max(graph.out_degree(v), 1) for v in nodes], dtype=np.float64)
    weights = degrees / degrees.sum()
    return {node: float(total * weight) for node, weight in zip(nodes, weights)}


def uniform_costs(nodes: Sequence[int], total: float) -> CostMap:
    """Distribute ``total`` equally across ``nodes``."""
    require_non_negative(total, "total")
    nodes = [int(v) for v in nodes]
    if not nodes:
        return {}
    share = total / len(nodes)
    return {node: share for node in nodes}


def random_costs(
    nodes: Sequence[int], total: float, random_state: RandomState = None
) -> CostMap:
    """Distribute ``total`` across ``nodes`` with random (Dirichlet) weights."""
    require_non_negative(total, "total")
    nodes = [int(v) for v in nodes]
    if not nodes:
        return {}
    rng = ensure_rng(random_state)
    weights = rng.dirichlet(np.ones(len(nodes)))
    return {node: float(total * weight) for node, weight in zip(nodes, weights)}


def _distribute(
    graph: ProbabilisticGraph,
    nodes: Sequence[int],
    total: float,
    setting: str,
    random_state: RandomState = None,
) -> CostMap:
    if setting == "degree":
        return degree_proportional_costs(graph, nodes, total)
    if setting == "uniform":
        return uniform_costs(nodes, total)
    if setting == "random":
        return random_costs(nodes, total, random_state)
    raise ConfigurationError(
        f"unknown cost setting {setting!r}; expected one of {COST_SETTINGS}"
    )


# --------------------------------------------------------------------------- #
# procedure 1: spread-calibrated costs (c(T) = E_l[I(T)])
# --------------------------------------------------------------------------- #


def estimate_spread_lower_bound(
    graph: ProbabilisticGraph,
    nodes: Sequence[int],
    num_rr_sets: int = 2000,
    num_mc_runs: int = 0,
    confidence: float = 0.95,
    random_state: RandomState = None,
    mc_backend: Optional[str] = None,
) -> float:
    """Lower bound ``E_l[I(T)]`` on the expected spread of ``nodes``.

    Uses the RIS estimator by default (fast, low variance); passing
    ``num_mc_runs > 0`` switches to Monte-Carlo simulation with a one-sided
    confidence bound, which is the more literal reading of the paper.
    ``mc_backend`` selects the simulation engine for that path (``None``
    honours ``REPRO_MC_BACKEND``, defaulting to the historical per-cascade
    loop; ``"vectorized"`` runs all cascades as one batched sweep).
    """
    nodes = [int(v) for v in nodes]
    if not nodes:
        return 0.0
    if num_mc_runs > 0:
        samples = monte_carlo_spread_samples(
            graph, nodes, num_mc_runs, random_state, backend=mc_backend
        )
        return expected_spread_lower_bound(samples, confidence)
    collection = FlatRRCollection.generate(graph, num_rr_sets, random_state)
    estimate = collection.estimate_spread(nodes)
    # Conservative additive slack: one standard error of the binomial count.
    fraction = collection.estimate_fraction(nodes)
    std_error = np.sqrt(max(fraction * (1.0 - fraction), 0.0) / max(collection.num_sets, 1))
    return max(0.0, float(estimate - 1.6449 * std_error * graph.n))


def spread_calibrated_costs(
    graph: ProbabilisticGraph,
    target: Sequence[int],
    setting: str = "degree",
    num_rr_sets: int = 2000,
    random_state: RandomState = None,
) -> CostAssignment:
    """Procedure 1: cost the target set by its own spread lower bound.

    Ensures ``c(T) = E_l[I(T)]`` (so that ``ρ(T) ≥ 0`` holds in expectation,
    the standing assumption of the TPM formulation) and distributes the
    total per ``setting``.
    """
    rng = ensure_rng(random_state)
    target = [int(v) for v in target]
    lower_bound = estimate_spread_lower_bound(
        graph, target, num_rr_sets=num_rr_sets, random_state=rng
    )
    costs = _distribute(graph, target, lower_bound, setting, rng)
    return CostAssignment(
        costs=costs,
        setting=setting,
        total=lower_bound,
        calibration_spread=lower_bound,
        metadata={"procedure": "spread-calibrated", "num_rr_sets": num_rr_sets},
    )


# --------------------------------------------------------------------------- #
# procedure 2: predefined costs (λ = c(V)/n fixed before choosing T)
# --------------------------------------------------------------------------- #


def lambda_predefined_costs(
    graph: ProbabilisticGraph,
    cost_ratio: float,
    setting: str = "degree",
    random_state: RandomState = None,
) -> CostAssignment:
    """Procedure 2: assign a cost to *every* node before the target is chosen.

    ``cost_ratio`` is the paper's λ = c(V)/n; the total budget ``λ·n`` is
    distributed over all nodes according to ``setting``.  Note that the
    paper scales λ in absolute terms of its million-node graphs; on the
    scaled-down proxies the same λ values would swamp every node's spread,
    so experiment configs use proportionally smaller ratios (see
    EXPERIMENTS.md).
    """
    require_positive(cost_ratio, "cost_ratio")
    rng = ensure_rng(random_state)
    all_nodes = list(range(graph.n))
    total = cost_ratio * graph.n
    costs = _distribute(graph, all_nodes, total, setting, rng)
    return CostAssignment(
        costs=costs,
        setting=setting,
        total=total,
        metadata={"procedure": "lambda-predefined", "lambda": cost_ratio},
    )


def scale_costs(assignment: CostAssignment, factor: float) -> CostAssignment:
    """Multiply every cost by ``factor`` (utility for sensitivity studies)."""
    require(factor >= 0, "factor must be >= 0")
    costs = {node: cost * factor for node, cost in assignment.costs.items()}
    return CostAssignment(
        costs=costs,
        setting=assignment.setting,
        total=assignment.total * factor,
        calibration_spread=assignment.calibration_spread,
        metadata={**assignment.metadata, "scaled_by": factor},
    )


def merge_costs(*assignments: CostAssignment) -> CostMap:
    """Merge several assignments into one cost map (later ones win ties)."""
    merged: CostMap = {}
    for assignment in assignments:
        merged.update(assignment.costs)
    return merged
