"""ADG — Adaptive Double Greedy under the oracle model (Algorithm 2).

ADG examines the target nodes one by one.  For the candidate ``u_i`` on the
current residual graph ``G_i`` it compares

* the *front profit* ``ρ_f = ∆_{G_i}(u_i | S_{i−1})`` — the expected
  marginal profit of seeding ``u_i`` on top of the already-selected seeds,
  and
* the *rear profit* ``ρ_r = −∆_{G_i}(u_i | T_{i−1} \\ {u_i})`` — the
  expected marginal profit of *abandoning* ``u_i`` given that the remaining
  candidates stay in play.

If ``ρ_f ≥ ρ_r`` the node is seeded, the activation feedback ``A(u_i)`` is
observed, and the residual graph shrinks; otherwise the node is dropped
from the candidate set.  With access to exact expected spreads (the oracle
model) the paper proves this policy is a 1/3 approximation of the optimal
adaptive policy (Theorem 1).

When ADG is driven by the RIS oracle
(:class:`repro.core.oracle.RISSpreadOracle`), every oracle query samples a
fresh batch through the vectorized engine of
:mod:`repro.sampling.engine`, so the oracle-model algorithm shares the
same fast sampling substrate as the noise-model ones.  Both per-node
marginals are requested through
:meth:`~repro.core.oracle.ProfitOracle.marginal_profit_pair`: oracles with
a batched backend (the vectorized Monte-Carlo oracle) answer the front and
rear queries from one shared realization batch, while every other oracle
falls back to the historical two sequential queries.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.oracle import ProfitOracle
from repro.core.results import IterationRecord, SeedingResult
from repro.core.session import AdaptiveSession
from repro.utils.timer import Timer
from repro.utils.validation import require


class ADG:
    """Adaptive double greedy under the oracle model.

    Parameters
    ----------
    target:
        The target candidate set ``T`` (examined in the given order; the
        guarantee holds for any fixed order).
    oracle:
        A :class:`~repro.core.oracle.ProfitOracle` able to answer expected
        marginal-profit queries on residual graphs.
    """

    name = "ADG"

    def __init__(self, target: Sequence[int], oracle: ProfitOracle) -> None:
        require(len(target) > 0, "target set must not be empty")
        self._target: List[int] = [int(v) for v in target]
        require(len(set(self._target)) == len(self._target), "target set contains duplicates")
        self._oracle = oracle

    @property
    def target(self) -> List[int]:
        """The target candidate set, in examination order."""
        return list(self._target)

    @property
    def oracle(self) -> ProfitOracle:
        """The profit oracle used for decisions."""
        return self._oracle

    def run(self, session: AdaptiveSession) -> SeedingResult:
        """Execute Algorithm 2 against ``session`` and return the outcome."""
        timer = Timer().start()
        selected: List[int] = []
        candidates = set(self._target)
        iterations: List[IterationRecord] = []
        oracle_queries = 0

        for node in self._target:
            if session.is_activated(node):
                candidates.discard(node)
                iterations.append(IterationRecord(node=node, action="skipped-activated"))
                continue

            residual = session.residual
            front_profit, rear_raw = self._oracle.marginal_profit_pair(
                residual, node, selected, candidates - {node}
            )
            rear_profit = -rear_raw
            oracle_queries += 2

            if front_profit >= rear_profit:
                newly_activated = session.commit_seed(node)
                selected.append(node)
                iterations.append(
                    IterationRecord(
                        node=node,
                        action="selected",
                        front_estimate=front_profit,
                        rear_estimate=rear_profit,
                        newly_activated=len(newly_activated),
                    )
                )
            else:
                candidates.discard(node)
                iterations.append(
                    IterationRecord(
                        node=node,
                        action="rejected",
                        front_estimate=front_profit,
                        rear_estimate=rear_profit,
                    )
                )

        timer.stop()
        return SeedingResult(
            algorithm=self.name,
            seeds=selected,
            realized_spread=session.realized_spread,
            realized_profit=session.realized_profit,
            seed_cost=session.seed_cost,
            rr_sets_generated=oracle_queries,
            runtime_seconds=timer.elapsed,
            iterations=iterations,
            extra={"oracle": type(self._oracle.spread_oracle).__name__},
        )
