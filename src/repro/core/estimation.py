"""Per-node-iteration front/rear marginal-spread estimation.

HATP, HNTP and ADDATP all run the same inner machinery per examined node:
each refinement round draws two independent RR collections of the
schedule's current size ``θ_i`` and estimates the *front* marginal spread
``Ê[I(u | S_{i−1})]`` and the *rear* marginal spread
``Ê[I(u | T_{i−1} \\ {u})]``.  :class:`FrontRearEstimator` owns that state
machine so the three algorithms share one implementation of the two
sampling policies:

* **regenerate** (``sample_reuse=False``, the historical default): both
  collections are drawn from scratch every round — the exact historical
  RNG stream and floating-point arithmetic;
* **reuse** (``sample_reuse=True``): the collections persist across the
  iteration's rounds and are extended by only the ``θ_i − θ_{i−1}`` new
  sets (through the supplied pool when given); estimates come from
  incremental :class:`~repro.sampling.coverage.CoverageCounter` state
  instead of re-scanning the grown collections.

The estimator is valid for one node-iteration only: the conditioning sets
and the residual view are fixed at construction, which is exactly the
window in which the sampling distribution is frozen (seeds are committed
only after the iteration decides).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.graphs.residual import ResidualGraph
from repro.parallel.pool import SamplingPool
from repro.sampling.coverage import CoverageCounter
from repro.sampling.flat_collection import FlatRRCollection
from repro.utils.rng import RandomState


class FrontRearEstimator:
    """Front/rear spread estimates for one node across refinement rounds.

    Parameters
    ----------
    view:
        Residual view to sample on (frozen for the iteration).
    node:
        The node ``u`` being examined.
    front_conditioning / rear_conditioning:
        ``S_{i−1}`` and ``T_{i−1} \\ {u}`` — fixed for the iteration.
    random_state:
        The algorithm's RNG (consumed identically to the historical loop
        on the regenerate path).
    pool:
        Optional persistent :class:`SamplingPool` for generation.
    sample_reuse:
        Select the reuse policy described in the module docstring.
    backend:
        Kernel backend name forwarded to every generation call (``None``
        resolves through the registry's defaults; every registered
        backend samples bit-for-bit identical collections).
    """

    __slots__ = (
        "_view",
        "_node",
        "_front_conditioning",
        "_rear_conditioning",
        "_rng",
        "_pool",
        "_reuse",
        "_backend",
        "_front",
        "_rear",
        "_front_counter",
        "_rear_counter",
    )

    def __init__(
        self,
        view: ResidualGraph,
        node: int,
        front_conditioning: Iterable[int],
        rear_conditioning: Iterable[int],
        random_state: RandomState,
        pool: Optional[SamplingPool] = None,
        sample_reuse: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self._view = view
        self._node = int(node)
        self._front_conditioning = front_conditioning
        self._rear_conditioning = rear_conditioning
        self._rng = random_state
        self._pool = pool
        self._reuse = bool(sample_reuse)
        self._backend = backend
        self._front: Optional[FlatRRCollection] = None
        self._rear: Optional[FlatRRCollection] = None
        self._front_counter: Optional[CoverageCounter] = None
        self._rear_counter: Optional[CoverageCounter] = None

    def estimates(self, theta: int) -> Tuple[float, float, int]:
        """Run one round at sample size ``theta``.

        Returns ``(front_spread, rear_spread, rr_sets_generated)`` where
        the last entry counts only the RR sets *newly drawn* this round
        (``2·θ`` when regenerating, ``2·(θ − θ_prev)`` when reusing).
        """
        generated = 0
        if self._reuse and self._front is not None:
            extra = theta - self._front.num_sets
            if extra > 0:
                self._front.extend_generate(
                    self._view, extra, self._rng,
                    backend=self._backend, pool=self._pool,
                )
                self._rear.extend_generate(
                    self._view, extra, self._rng,
                    backend=self._backend, pool=self._pool,
                )
                generated = 2 * extra
        else:
            self._front = FlatRRCollection.generate(
                self._view, theta, self._rng,
                backend=self._backend, pool=self._pool,
            )
            self._rear = FlatRRCollection.generate(
                self._view, theta, self._rng,
                backend=self._backend, pool=self._pool,
            )
            generated = 2 * theta
            if self._reuse:
                self._front_counter = CoverageCounter(
                    self._front, self._front_conditioning
                )
                self._rear_counter = CoverageCounter(
                    self._rear, self._rear_conditioning
                )
        if self._reuse:
            front_spread = self._front_counter.estimate_marginal_spread(self._node)
            rear_spread = self._rear_counter.estimate_marginal_spread(self._node)
        else:
            front_spread = self._front.estimate_marginal_spread(
                self._node, self._front_conditioning
            )
            rear_spread = self._rear.estimate_marginal_spread(
                self._node, self._rear_conditioning
            )
        return front_spread, rear_spread, generated
