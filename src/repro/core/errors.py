"""Sampling-error schedules used by the noise-model algorithms.

ADDATP (Algorithm 3) controls only an *additive* error ``ζ_i`` which is
divided by ``√2`` every time the current batch of RR sets is not conclusive,
while the failure probability ``δ_i`` is halved.  Because its per-round
sample size grows like ``1/ζ_i²``, driving ``n_i ζ_i`` down to the stopping
threshold of 1 costs ``O(n_i² ln n)`` samples — the efficiency problem
Section IV-A describes.

HATP (Algorithm 4) keeps a *hybrid* error: a relative part ``ε_i`` and an
additive part ``ζ_i``.  Its per-round sample size grows only like
``1/(ε_i ζ_i)``, and the two knobs are tightened *adaptively*: when the
estimate indicates a large marginal spread the relative error is the
binding constraint and is halved; when the estimate is small the additive
error is halved; otherwise both shrink by ``√2``.

Both schedules are factored out here so they can be unit-tested and ablated
independently of the seeding loops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.sampling.bounds import hoeffding_sample_size, hybrid_sample_size
from repro.utils.validation import require, require_positive, require_probability


@dataclass(frozen=True)
class AdditiveErrorState:
    """Per-round state of ADDATP's additive error schedule."""

    zeta: float
    delta: float
    round_index: int = 0

    def scaled_error(self, num_active_nodes: int) -> float:
        """The absolute spread error ``n_i ζ_i`` the round tolerates."""
        return self.zeta * num_active_nodes


class AdditiveErrorSchedule:
    """ADDATP's ``ζ_i /= √2``, ``δ_i /= 2`` refinement rule.

    Parameters
    ----------
    zeta0:
        Initial additive error ``ζ_0`` (paper: at least ``1/n``; the
        experiments initialise ``n_i ζ_0 = 64``).
    delta0:
        Initial failure probability ``δ_i`` of one round (paper:
        ``1/(k n)``).
    """

    def __init__(self, zeta0: float, delta0: float) -> None:
        require_probability(zeta0, "zeta0")
        require_positive(delta0, "delta0")
        require(delta0 < 1.0, "delta0 must be < 1")
        self._zeta0 = float(zeta0)
        self._delta0 = float(delta0)

    def initial(self) -> AdditiveErrorState:
        """State of the first estimation round."""
        return AdditiveErrorState(zeta=self._zeta0, delta=self._delta0, round_index=0)

    def refine(self, state: AdditiveErrorState) -> AdditiveErrorState:
        """Tighten the error for the next round (line 19 of Algorithm 3)."""
        return AdditiveErrorState(
            zeta=state.zeta / math.sqrt(2.0),
            delta=state.delta / 2.0,
            round_index=state.round_index + 1,
        )

    def sample_size(self, state: AdditiveErrorState) -> int:
        """``θ = ln(8/δ_i) / (2 ζ_i²)`` — the per-round RR-set count."""
        return hoeffding_sample_size(state.zeta, state.delta, numerator=8.0)


@dataclass(frozen=True)
class HybridErrorState:
    """Per-round state of HATP's hybrid error schedule."""

    epsilon: float
    zeta: float
    delta: float
    round_index: int = 0

    def scaled_error(self, num_active_nodes: int) -> float:
        """The absolute additive spread error ``n_i ζ_i``."""
        return self.zeta * num_active_nodes


class HybridErrorSchedule:
    """HATP's adaptive ``(ε_i, ζ_i)`` adjustment rule (lines 19–24).

    Parameters
    ----------
    epsilon0:
        Initial relative error ``ε_0`` (paper default 0.5).
    zeta0:
        Initial additive error ``ζ_0``.
    delta0:
        Initial per-round failure probability (paper: ``1/(k n)``).
    epsilon_threshold:
        The final relative error ``ε`` the algorithm guarantees (paper
        default 0.05); the relative error never drops below it.
    additive_floor:
        The value of ``n_i ζ_i`` considered "small enough" (paper: 1).
    magnitude_ratio:
        The "one magnitude" factor in line 21: when the front estimate is
        at least ``magnitude_ratio × n_i ζ_i`` the relative error is the
        binding one and gets halved.
    """

    def __init__(
        self,
        epsilon0: float,
        zeta0: float,
        delta0: float,
        epsilon_threshold: float = 0.05,
        additive_floor: float = 1.0,
        magnitude_ratio: float = 10.0,
    ) -> None:
        require_probability(epsilon0, "epsilon0")
        require_probability(zeta0, "zeta0")
        require_positive(delta0, "delta0")
        require_probability(epsilon_threshold, "epsilon_threshold")
        require(
            epsilon0 >= epsilon_threshold,
            "epsilon0 must be at least epsilon_threshold",
        )
        require_positive(additive_floor, "additive_floor")
        require_positive(magnitude_ratio, "magnitude_ratio")
        self._epsilon0 = float(epsilon0)
        self._zeta0 = float(zeta0)
        self._delta0 = float(delta0)
        self.epsilon_threshold = float(epsilon_threshold)
        self.additive_floor = float(additive_floor)
        self._magnitude_ratio = float(magnitude_ratio)

    def initial(self) -> HybridErrorState:
        """State of the first estimation round."""
        return HybridErrorState(
            epsilon=self._epsilon0, zeta=self._zeta0, delta=self._delta0, round_index=0
        )

    def sample_size(self, state: HybridErrorState) -> int:
        """``θ = (1+ε_i/3)² ln(4/δ_i) / (2 ε_i ζ_i)`` — the per-round RR count."""
        return hybrid_sample_size(state.epsilon, state.zeta, state.delta, numerator=4.0)

    def is_exhausted(self, state: HybridErrorState, num_active_nodes: int) -> bool:
        """The C'2 stopping condition: both errors have hit their floors."""
        return (
            state.epsilon <= self.epsilon_threshold
            and state.scaled_error(num_active_nodes) <= self.additive_floor
        )

    def refine(
        self,
        state: HybridErrorState,
        num_active_nodes: int,
        front_estimate: float,
    ) -> HybridErrorState:
        """Apply the adaptive adjustment of lines 19–24 of Algorithm 4.

        ``front_estimate`` is the current estimate ``f_est`` of the marginal
        spread of the node being examined — the signal used to decide which
        error component is binding.
        """
        additive = state.scaled_error(num_active_nodes)
        epsilon, zeta = state.epsilon, state.zeta
        if epsilon <= self.epsilon_threshold and additive > self.additive_floor:
            zeta = zeta / 2.0
        elif epsilon > self.epsilon_threshold and additive <= self.additive_floor:
            epsilon = epsilon / 2.0
        elif front_estimate >= self._magnitude_ratio * additive:
            epsilon = epsilon / 2.0
        elif front_estimate <= additive:
            zeta = zeta / 2.0
        else:
            epsilon = epsilon / math.sqrt(2.0)
            zeta = zeta / math.sqrt(2.0)
        epsilon = max(epsilon, self.epsilon_threshold)
        return HybridErrorState(
            epsilon=epsilon,
            zeta=zeta,
            delta=state.delta / 2.0,
            round_index=state.round_index + 1,
        )


@dataclass(frozen=True)
class DynamicThresholdState:
    """State of the dynamic C2 threshold extension of ADDATP (§III-C Discussion).

    Tracks the accumulated profit ``ρ_i`` and the accumulated slack
    ``Σ η̃_j`` spent on iterations that stopped through C2, and adjusts the
    next iteration's threshold so that the total profit loss stays within
    ``ε · ρ_i`` — yielding the ``(1−ε)/3`` expected ratio discussed in the
    paper.
    """

    epsilon: float
    accumulated_profit: float = 0.0
    accumulated_slack: float = 0.0
    default_threshold: float = 1.0

    def next_threshold(self) -> float:
        """Threshold ``η_{i+1}`` for the next iteration's C2 condition."""
        budget = self.epsilon * self.accumulated_profit
        if budget >= 2.0 * self.accumulated_slack + 2.0:
            return max((budget - 2.0 * self.accumulated_slack - 2.0) / 2.0, 0.0)
        return self.default_threshold

    def after_iteration(
        self, profit_gained: float, stopped_by_c2: bool, threshold_used: float
    ) -> "DynamicThresholdState":
        """Fold one iteration's outcome into the state."""
        return replace(
            self,
            accumulated_profit=self.accumulated_profit + max(profit_gained, 0.0),
            accumulated_slack=self.accumulated_slack
            + (threshold_used if stopped_by_c2 else 0.0),
        )
