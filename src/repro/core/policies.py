"""Policy abstractions and the policy algebra used in the paper's analysis.

Two views of a "policy" coexist:

* **Operational** — an adaptive algorithm exposing ``run(session)``; this is
  what ADG / ADDATP / HATP / ARS implement and what the experiments execute.
* **Analytical** — a mapping ``φ ↦ S_φ(π)`` from realizations to the seed
  set the policy ends up selecting under that realization.  The paper's
  proofs manipulate policies in this second view through three operators
  (Definitions 4–6): *truncation* ``π[i]``, *concatenation* ``π ⊕ π'`` and
  *intersection* ``π ⊗ π'`` with
  ``S_φ(π ⊕ π') = S_φ(π) ∪ S_φ(π')`` and
  ``S_φ(π ⊗ π') = S_φ(π) ∩ S_φ(π')``.

This module implements the analytical view so the theoretical statements
(Lemma 3, Theorem 1, the adaptivity gap) can be *checked numerically* on
small instances: expected policy profits ``Λ(π)`` are computed exactly by
enumerating all realizations of a small graph.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Mapping, Protocol, Sequence, Set, Tuple

import numpy as np

from repro.core.profit import total_cost
from repro.core.results import SeedingResult
from repro.core.session import AdaptiveSession
from repro.diffusion.realization import BaseRealization, Realization
from repro.graphs.graph import ProbabilisticGraph
from repro.utils.exceptions import ValidationError
from repro.utils.validation import require


class AdaptivePolicy(Protocol):
    """Operational policy interface: every adaptive algorithm satisfies it."""

    name: str

    def run(self, session: AdaptiveSession) -> SeedingResult:
        """Run the policy against an adaptive session."""
        ...


class RealizationPolicy:
    """Analytical policy: a function from realization to selected seed set."""

    def __init__(self, select: Callable[[BaseRealization], Set[int]], name: str = "policy") -> None:
        self._select = select
        self.name = name

    def seed_set(self, realization: BaseRealization) -> Set[int]:
        """``S_φ(π)`` — the seeds the policy selects under ``realization``."""
        return set(self._select(realization))

    # -------------------------- policy algebra ------------------------- #

    def concatenate(self, other: "RealizationPolicy") -> "RealizationPolicy":
        """Policy concatenation ``π ⊕ π'`` (Definition 5): union of seed sets."""
        return RealizationPolicy(
            lambda phi: self.seed_set(phi) | other.seed_set(phi),
            name=f"({self.name})⊕({other.name})",
        )

    def intersect(self, other: "RealizationPolicy") -> "RealizationPolicy":
        """Policy intersection ``π ⊗ π'`` (Definition 6): intersection of seed sets."""
        return RealizationPolicy(
            lambda phi: self.seed_set(phi) & other.seed_set(phi),
            name=f"({self.name})⊗({other.name})",
        )

    def __or__(self, other: "RealizationPolicy") -> "RealizationPolicy":
        return self.concatenate(other)

    def __and__(self, other: "RealizationPolicy") -> "RealizationPolicy":
        return self.intersect(other)


def fixed_set_policy(seed_set: Iterable[int], name: str = "fixed") -> RealizationPolicy:
    """A (nonadaptive) policy that always selects the same seed set."""
    frozen = {int(v) for v in seed_set}
    return RealizationPolicy(lambda _phi: set(frozen), name=name)


def adaptive_algorithm_policy(
    algorithm_factory: Callable[[], AdaptivePolicy],
    graph: ProbabilisticGraph,
    costs: Mapping[int, float],
    name: str = "adaptive",
) -> RealizationPolicy:
    """Wrap an operational algorithm as an analytical policy.

    Each evaluation builds a fresh session on the given realization and runs
    a fresh algorithm instance (obtained from ``algorithm_factory``), so
    stochastic algorithms should be given a deterministic factory when exact
    expectations are required.
    """

    def _select(realization: BaseRealization) -> Set[int]:
        session = AdaptiveSession(graph, realization, costs)
        result = algorithm_factory().run(session)
        return set(result.seeds)

    return RealizationPolicy(_select, name=name)


def truncated_policy(
    algorithm_factory: Callable[[Sequence[int]], AdaptivePolicy],
    graph: ProbabilisticGraph,
    costs: Mapping[int, float],
    target: Sequence[int],
    level: int,
    name: str = "truncated",
) -> RealizationPolicy:
    """Policy truncation ``π[i]`` (Definition 4) for target-scanning policies.

    The truncated policy behaves exactly like the original but only examines
    the first ``level`` nodes of ``target``.  ``algorithm_factory`` receives
    the truncated examination order and must return a fresh algorithm
    instance restricted to it.
    """
    require(0 <= level <= len(target), "level must be within the target size")
    truncated_target = [int(v) for v in target[:level]]

    def _select(realization: BaseRealization) -> Set[int]:
        if not truncated_target:
            return set()
        session = AdaptiveSession(graph, realization, costs)
        result = algorithm_factory(truncated_target).run(session)
        return set(result.seeds)

    return RealizationPolicy(_select, name=f"{name}[{level}]")


# --------------------------------------------------------------------------- #
# exact expectations on small graphs
# --------------------------------------------------------------------------- #


def enumerate_realizations(
    graph: ProbabilisticGraph, max_edges: int = 16
) -> List[Tuple[Realization, float]]:
    """All possible worlds of ``graph`` with their probabilities.

    Guarded by ``max_edges`` since the enumeration is exponential in the
    number of edges.
    """
    if graph.m > max_edges:
        raise ValidationError(
            f"realization enumeration requires <= {max_edges} edges, got {graph.m}"
        )
    _, _, probs = graph.edge_array()
    worlds: List[Tuple[Realization, float]] = []
    for pattern in itertools.product([False, True], repeat=graph.m):
        live = np.asarray(pattern, dtype=bool)
        probability = float(
            np.prod(np.where(live, probs, 1.0 - probs)) if graph.m else 1.0
        )
        if probability > 0.0:
            worlds.append((Realization(graph, live), probability))
    return worlds


def exact_policy_profit(
    policy: RealizationPolicy,
    graph: ProbabilisticGraph,
    costs: Mapping[int, float],
    max_edges: int = 16,
) -> float:
    """``Λ(π)``: the exact expected profit of ``policy`` (Definition 1)."""
    total = 0.0
    for realization, probability in enumerate_realizations(graph, max_edges):
        seeds = policy.seed_set(realization)
        spread = realization.spread(seeds)
        total += probability * (spread - total_cost(costs, seeds))
    return total


def optimal_nonadaptive_profit(
    graph: ProbabilisticGraph,
    target: Sequence[int],
    costs: Mapping[int, float],
    max_edges: int = 16,
) -> Tuple[float, Set[int]]:
    """Best fixed subset of ``target`` by exact expected profit (brute force)."""
    worlds = enumerate_realizations(graph, max_edges)
    target = [int(v) for v in target]
    best_value, best_set = float("-inf"), set()
    for size in range(len(target) + 1):
        for combo in itertools.combinations(target, size):
            seeds = set(combo)
            value = sum(
                probability * (realization.spread(seeds) - total_cost(costs, seeds))
                for realization, probability in worlds
            )
            if value > best_value:
                best_value, best_set = value, seeds
    return best_value, best_set


def omniscient_profit_upper_bound(
    graph: ProbabilisticGraph,
    target: Sequence[int],
    costs: Mapping[int, float],
    max_edges: int = 16,
) -> float:
    """Expected profit of the omniscient policy (best subset per realization).

    The omniscient policy sees the realization before choosing, so its value
    upper-bounds the optimal adaptive policy ``Λ(π^opt)``; useful for
    sandwiching approximation-ratio checks on small instances.
    """
    worlds = enumerate_realizations(graph, max_edges)
    target = [int(v) for v in target]
    total = 0.0
    for realization, probability in worlds:
        best = 0.0
        for size in range(len(target) + 1):
            for combo in itertools.combinations(target, size):
                seeds = set(combo)
                value = realization.spread(seeds) - total_cost(costs, seeds)
                best = max(best, value)
        total += probability * best
    return total


def expected_policy_profit_sampled(
    policy: RealizationPolicy,
    graph: ProbabilisticGraph,
    costs: Mapping[int, float],
    realizations: Sequence[BaseRealization],
) -> float:
    """Monte-Carlo estimate of ``Λ(π)`` over a fixed family of realizations."""
    if not realizations:
        return 0.0
    total = 0.0
    for realization in realizations:
        seeds = policy.seed_set(realization)
        total += realization.spread(seeds) - total_cost(costs, seeds)
    return total / len(realizations)
