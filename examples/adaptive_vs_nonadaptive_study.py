#!/usr/bin/env python3
"""Adaptive-versus-nonadaptive study (a miniature of Figures 2 and 5).

Sweeps the target size ``k`` on one or more dataset proxies, runs the full
algorithm line-up of the paper (HATP, ADDATP, HNTP, NSG, NDG, ARS and the
whole-target Baseline) on shared possible worlds, and prints the profit and
running-time series — the same rows Figures 2 and 5 plot.

Run:
    python examples/adaptive_vs_nonadaptive_study.py             # smoke scale
    python examples/adaptive_vs_nonadaptive_study.py --scale small --datasets nethept dblp
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    get_scale,
    profit_series,
    runtime_series,
    summarize_improvement,
    sweep_target_sizes,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--datasets", nargs="+", default=None, help="dataset proxies to use")
    parser.add_argument("--cost-setting", default="degree", choices=["degree", "uniform", "random"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scale = get_scale(args.scale)
    dataset_names = args.datasets if args.datasets else list(scale.datasets)

    for dataset in dataset_names:
        print(f"\n=== {dataset} ({args.cost_setting} costs, scale={scale.name}) ===")
        sweep = sweep_target_sizes(
            dataset, args.cost_setting, scale, random_state=args.seed
        )
        profits = profit_series(
            dataset, args.cost_setting, scale, experiment_id="fig2", sweep=sweep
        )
        runtimes = runtime_series(
            dataset, args.cost_setting, scale, experiment_id="fig5", sweep=sweep
        )
        print(profits.format_table())
        print()
        print(runtimes.format_table(float_format="{:>12.4f}"))

        improvements = summarize_improvement(profits)
        if improvements:
            print("\naverage profit improvement of HATP over the nonadaptive algorithms:")
            for baseline, ratio in improvements.items():
                print(f"  vs {baseline:<5} {ratio:+.1%}")


if __name__ == "__main__":
    main()
