#!/usr/bin/env python3
"""A staged viral-marketing campaign with a limited mailing list.

Scenario (the paper's motivating use case): an online shop can only contact
the users on its subscription mailing list — the *target set* T.  Each
contact costs money (a voucher whose value scales with how influential the
user looks, i.e. degree-proportional costs).  The shop rolls the campaign
out **adaptively**: it sends one voucher, watches which users end up buying
through word-of-mouth, and only then decides about the next contact.

The script simulates that campaign end-to-end over several "parallel
universes" (possible worlds) and reports how the adaptive rollout (HATP)
compares with committing the whole mailing list up front, with the
nonadaptive profit algorithms NSG / NDG, and with random couponing (ARS).

Run:
    python examples/viral_marketing_campaign.py [--dataset epinions] [--nodes 600]
"""

from __future__ import annotations

import argparse

from repro import HATP, NDG, NSG, AdaptiveRandomSet, AdaptiveSession
from repro.core.targets import build_spread_calibrated_instance
from repro.diffusion import sample_realizations
from repro.graphs import datasets


def run_campaign(instance, realization, seed):
    """One adaptive rollout against one possible world; returns the result."""
    session = AdaptiveSession(instance.graph, realization, instance.costs)
    algorithm = HATP(instance.target, random_state=seed, max_samples_per_round=1500)
    return algorithm.run(session)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="epinions", choices=list(datasets.dataset_names()))
    parser.add_argument("--nodes", type=int, default=600, help="proxy graph size")
    parser.add_argument("--mailing-list", type=int, default=30, help="target set size")
    parser.add_argument("--worlds", type=int, default=5, help="possible worlds to average")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    graph = datasets.load_proxy(args.dataset, nodes=args.nodes, random_state=args.seed)
    instance = build_spread_calibrated_instance(
        graph,
        k=args.mailing_list,
        cost_setting="degree",
        num_rr_sets=3000,
        random_state=args.seed,
    )
    print(f"social network : {graph!r}")
    print(f"mailing list   : {instance.k} users, total voucher budget {instance.target_cost():.0f}")

    worlds = sample_realizations(graph, args.worlds, random_state=args.seed + 1)

    # Nonadaptive competitors commit to their seed sets before the campaign.
    nsg_seeds = NSG(instance.target, num_samples=2000, random_state=args.seed).select(
        graph, instance.costs
    ).seeds
    ndg_seeds = NDG(instance.target, num_samples=2000, random_state=args.seed).select(
        graph, instance.costs
    ).seeds

    totals = {"HATP": 0.0, "ARS": 0.0, "NSG": 0.0, "NDG": 0.0, "whole list": 0.0}
    contacted = {"HATP": 0, "ARS": 0}
    for index, world in enumerate(worlds):
        result = run_campaign(instance, world, seed=args.seed + index)
        totals["HATP"] += result.realized_profit
        contacted["HATP"] += result.num_seeds

        random_result = AdaptiveRandomSet(instance.target, random_state=args.seed + index).run(
            AdaptiveSession(graph, world, instance.costs)
        )
        totals["ARS"] += random_result.realized_profit
        contacted["ARS"] += random_result.num_seeds

        scorer = AdaptiveSession(graph, world, instance.costs)
        totals["NSG"] += scorer.evaluate_nonadaptive(nsg_seeds).profit
        totals["NDG"] += scorer.evaluate_nonadaptive(ndg_seeds).profit
        totals["whole list"] += scorer.evaluate_nonadaptive(instance.target).profit

    print(f"\naverage profit over {args.worlds} possible worlds")
    print("-" * 44)
    for name in ("HATP", "NDG", "NSG", "ARS", "whole list"):
        print(f"  {name:<12} {totals[name] / args.worlds:>10.1f}")
    print(
        f"\nHATP contacted on average {contacted['HATP'] / args.worlds:.1f} of "
        f"{instance.k} users on the list (ARS: {contacted['ARS'] / args.worlds:.1f})"
    )


if __name__ == "__main__":
    main()
