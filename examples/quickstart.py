#!/usr/bin/env python3
"""Quickstart: adaptive target profit maximization in ~30 lines.

Builds a small NetHEPT-like social graph, picks the top-20 influential users
as the advertiser's target list, calibrates their seeding costs, and then
runs HATP — the paper's practical adaptive algorithm — against one simulated
market (a sampled realization).  Finally the adaptive outcome is compared
with naively seeding the whole target list.

Run:
    python examples/quickstart.py [--nodes 400] [--k 20] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import HATP, AdaptiveSession, quickstart_instance
from repro.diffusion import Realization


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=400, help="proxy graph size")
    parser.add_argument("--k", type=int, default=20, help="target set size")
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    args = parser.parse_args()

    # 1. Build a TPM instance: graph + target set + per-node seeding costs.
    instance = quickstart_instance(
        dataset="nethept", nodes=args.nodes, k=args.k, random_state=args.seed
    )
    print(f"graph: {instance.graph!r}")
    print(f"target set ({instance.k} nodes): {instance.target}")
    print(f"total target cost c(T) = {instance.target_cost():.1f}")

    # 2. The "true market" is a hidden realization of the probabilistic graph.
    market = Realization.sample(instance.graph, random_state=args.seed + 1)

    # 3. Run the adaptive algorithm.  It only sees the residual graph and the
    #    activation feedback the session exposes — never the realization.
    session = AdaptiveSession(instance.graph, market, instance.costs)
    algorithm = HATP(instance.target, random_state=args.seed + 2, max_samples_per_round=4000)
    result = algorithm.run(session)

    print("\n--- adaptive seeding with HATP ---")
    for record in result.iterations:
        detail = ""
        if record.action == "selected":
            detail = f" (activated {record.newly_activated} users)"
        print(f"  node {record.node:>5}: {record.action}{detail}")
    print(f"seeds committed : {result.seeds}")
    print(f"users activated : {result.realized_spread}")
    print(f"seeding cost    : {result.seed_cost:.1f}")
    print(f"profit          : {result.realized_profit:.1f}")
    print(f"RR sets sampled : {result.rr_sets_generated}")

    # 4. Compare with nonadaptively seeding the whole target list.
    naive = AdaptiveSession(instance.graph, market, instance.costs).evaluate_nonadaptive(
        instance.target
    )
    print("\n--- seeding the whole target list (baseline) ---")
    print(f"users activated : {naive.spread:.0f}")
    print(f"profit          : {naive.profit:.1f}")

    improvement = result.realized_profit - naive.profit
    print(f"\nadaptive selection earned {improvement:+.1f} more profit than the baseline")


if __name__ == "__main__":
    main()
