#!/usr/bin/env python3
"""Why hybrid error matters, and how (in)sensitive HATP is to its knobs.

Three small studies on one dataset proxy:

1. **Error-mode ablation** — the same adaptive double-greedy decisions made
   with the additive-error schedule (ADDATP) versus the hybrid schedule
   (HATP): how many RR sets each needs and what profit each reaches.
2. **ε sensitivity** (Fig. 4b) — HATP's profit as its relative-error
   threshold varies; the paper's observation is that it barely moves.
3. **Sample-cap ablation** — how the pure-Python engine's per-round sample
   cap affects profit (the profit saturates quickly, echoing Fig. 9).

Run:
    python examples/hybrid_error_tuning.py [--dataset nethept] [--k 10]
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    epsilon_sensitivity,
    error_mode_ablation,
    get_scale,
    profit_relative_range,
    sample_cap_ablation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="nethept")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--scale", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scale = get_scale(args.scale)

    print("=== 1. additive vs hybrid error ===")
    ablation = error_mode_ablation(
        dataset=args.dataset, k=args.k, scale=scale, random_state=args.seed
    )
    print(ablation.format_table())
    hatp_rr = ablation.series["HATP"][1]
    addatp_rr = ablation.series["ADDATP"][1]
    if hatp_rr:
        print(f"ADDATP needed {addatp_rr / hatp_rr:.1f}x the RR sets HATP needed\n")

    print("=== 2. sensitivity to the relative-error threshold ε (Fig. 4b) ===")
    sensitivity = epsilon_sensitivity(
        dataset=args.dataset, k=args.k, scale=scale, random_state=args.seed
    )
    print(sensitivity.format_table())
    print(
        "max-to-min profit span across ε values: "
        f"{profit_relative_range(sensitivity):.1%}\n"
    )

    print("=== 3. per-round sample cap ===")
    caps = sample_cap_ablation(
        dataset=args.dataset, k=args.k, scale=scale, random_state=args.seed
    )
    print(caps.format_table())


if __name__ == "__main__":
    main()
