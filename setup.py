"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
editable installs (``pip install -e .``) work on environments whose
setuptools predates PEP 660 support or that lack the ``wheel`` package
(such as fully offline machines).
"""

from setuptools import setup

setup()
